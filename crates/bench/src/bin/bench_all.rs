//! Unified benchmark runner: Figure 6 + every shape experiment + the
//! storage-model rows, in one process, with a schema-versioned JSON report
//! and a regression gate against a committed baseline.
//!
//! ```text
//! cargo run --release -p sting-bench --bin bench_all            # full run
//! cargo run --release -p sting-bench --bin bench_all -- --smoke # CI tier
//! cargo run --release -p sting-bench --bin bench_all -- \
//!     --against BENCH_PR4.json --threshold 0.10                 # regress?
//! ```
//!
//! Exit status: 0 on success, 1 when a Figure 6 gate check fails after
//! three attempts or `--against` finds a row slowed past the threshold,
//! 2 on usage or I/O errors.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;
use sting::prelude::*;
use sting_bench::report::{compare, BenchReport, BenchRow, Check};
use sting_bench::shapes::{self, Scale};
use sting_bench::{
    dist::Dist, figure6_checks, figure6_gates_pass, measure_figure6, render_figure6,
};

struct Args {
    smoke: bool,
    iters: Option<u64>,
    reps: Option<u64>,
    out: String,
    against: Option<String>,
    threshold: f64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        smoke: false,
        iters: None,
        reps: None,
        out: "BENCH_PR10.json".to_string(),
        against: None,
        threshold: 0.10,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match arg.as_str() {
            "--smoke" => args.smoke = true,
            "--iters" => args.iters = Some(value("--iters")?.parse().map_err(|e| format!("{e}"))?),
            "--reps" => args.reps = Some(value("--reps")?.parse().map_err(|e| format!("{e}"))?),
            "--out" => args.out = value("--out")?,
            "--against" => args.against = Some(value("--against")?),
            "--threshold" => {
                args.threshold = value("--threshold")?.parse().map_err(|e| format!("{e}"))?;
            }
            "--help" | "-h" => {
                return Err(
                    "usage: bench_all [--smoke] [--iters N] [--reps N] [--out PATH] \
                            [--against BASELINE.json] [--threshold FRACTION]"
                        .to_string(),
                );
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    Ok(args)
}

/// Times `reps` runs of `workload`, each on a fresh VM from `mk`; only the
/// workload is timed (VM construction and shutdown are excluded).
fn run_reps(reps: u64, mk: impl Fn() -> Arc<Vm>, workload: impl Fn(&Arc<Vm>)) -> Dist {
    let mut samples = Vec::with_capacity(reps as usize);
    for _ in 0..reps.max(1) {
        let vm = mk();
        let start = Instant::now();
        workload(&vm);
        samples.push(start.elapsed().as_nanos() as f64);
        vm.shutdown();
    }
    Dist::from_samples(samples)
}

/// [`run_reps`] over a fleet: one `shards`-shard fleet (4 VPs total,
/// untraced) and one sharded space serve every rep, with a warm-up run
/// first — a cold fleet's first workload pays worker spin-up and stack
/// allocation, which would drown the short tree rows.
fn run_fleet_reps(reps: u64, shards: usize, workload: impl Fn(&Fleet, &ShardedSpace)) -> Dist {
    let fleet = shapes::shard_fleet(shards, 4, false);
    let ts = ShardedSpace::new(&fleet);
    workload(&fleet, &ts); // warm-up: workers spun up, stacks pooled
    let mut samples = Vec::with_capacity(reps as usize);
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        workload(&fleet, &ts);
        samples.push(start.elapsed().as_nanos() as f64);
    }
    fleet.shutdown();
    Dist::from_samples(samples)
}

/// Steal-throughput ns/dispatch over `reps` timed hammers (after one
/// warm-up hammer) on a single VM.
fn steal_throughput(vm: &Arc<Vm>, reps: u64, threads: i64, yields: i64) -> Dist {
    shapes::steal_hammer(vm, threads, yields); // warm-up: stacks pooled, workers awake
    let expected: i64 = (0..threads).sum();
    let mut samples = Vec::with_capacity(reps as usize);
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        let sum = shapes::steal_hammer(vm, threads, yields);
        let t = start.elapsed();
        assert_eq!(sum, expected);
        samples.push(t.as_nanos() as f64 / shapes::steal_dispatches(threads, yields));
    }
    Dist::from_samples(samples)
}

/// [`steal_throughput`] for the priority-policy hammer (threads cycle
/// through the priority bands).
fn priority_steal_throughput(vm: &Arc<Vm>, reps: u64, threads: i64, yields: i64) -> Dist {
    shapes::priority_steal_hammer(vm, threads, yields); // warm-up
    let expected: i64 = (0..threads).sum();
    let mut samples = Vec::with_capacity(reps as usize);
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        let sum = shapes::priority_steal_hammer(vm, threads, yields);
        let t = start.elapsed();
        assert_eq!(sum, expected);
        samples.push(t.as_nanos() as f64 / shapes::steal_dispatches(threads, yields));
    }
    Dist::from_samples(samples)
}

fn print_row(r: &BenchRow) {
    println!(
        "  {:<12} {:<28} {:>12.0} {:>12.0} {:>12.0} {:>12.0}  {}",
        r.suite, r.name, r.min, r.mean, r.p50, r.p99, r.unit
    );
}

fn main() -> ExitCode {
    // Hidden mode: the server benchmark re-executes this binary as its
    // echo client so the held connections live in their own fd table.
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.first().is_some_and(|a| a == "--echo-client") {
        return match sting_bench::server::echo_client_main(&raw[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("{e}");
                ExitCode::from(2)
            }
        };
    }
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let mut scale = if args.smoke {
        Scale::smoke()
    } else {
        Scale::full()
    };
    if let Some(iters) = args.iters {
        scale.figure6_iters = iters;
    }
    if let Some(reps) = args.reps {
        scale.reps = reps;
    }
    let reps = scale.reps;
    let mode = if args.smoke { "smoke" } else { "full" };
    println!(
        "bench_all — mode={mode}, figure6 iters={}, reps={reps}",
        scale.figure6_iters
    );

    // Load the baseline before measuring anything: a missing or
    // schema-incompatible file should fail in milliseconds, not after the
    // whole suite has run.
    let baseline = match &args.against {
        None => None,
        Some(path) => {
            match std::fs::read_to_string(path)
                .map_err(|e| e.to_string())
                .and_then(|t| BenchReport::from_json(&t))
            {
                Ok(b) => Some(b),
                Err(e) => {
                    eprintln!("failed to load baseline {path}: {e}");
                    return ExitCode::from(2);
                }
            }
        }
    };

    let mut rows: Vec<BenchRow> = Vec::new();
    let mut checks: Vec<Check> = Vec::new();

    // --- Figure 6, with up to three attempts to clear the ordering gates
    // (a background hiccup on a shared machine can invert the closest
    // pair; a genuine regression fails all three). ---
    let mut gates_ok = false;
    for attempt in 1..=3 {
        eprintln!("figure6 (attempt {attempt}):");
        let f6 = measure_figure6(scale.figure6_iters);
        let f6_checks = figure6_checks(&f6);
        gates_ok = figure6_gates_pass(&f6_checks);
        if attempt == 3 || gates_ok {
            println!("{}", render_figure6(&f6));
            rows.extend(f6.iter().map(|r| {
                BenchRow::from_dist("figure6", r.name, "ns/iter", &r.dist).with_paper_us(r.paper_us)
            }));
            checks.extend(f6_checks);
            break;
        }
        eprintln!("  ordering gate failed; re-measuring");
    }

    // --- E1: stealing vs scheduling policy ---
    println!("shape: stealing (primes limit {})", scale.primes_limit);
    for cfg in shapes::STEALING_CONFIGS {
        let limit = scale.primes_limit;
        let d = run_reps(
            reps,
            || shapes::stealing_vm(cfg, false),
            |vm| shapes::primes_futures(vm, limit, cfg.lazy, cfg.stealable),
        );
        let row = BenchRow::from_dist("shape", &format!("stealing-{}", cfg.name), "ns/run", &d);
        print_row(&row);
        rows.push(row);
    }

    // --- E2: policy / program-structure matching ---
    println!(
        "shape: policies (farm {} jobs, tree depth {})",
        scale.farm_jobs, scale.tree_depth
    );
    type PolicyVm = (&'static str, fn() -> Arc<Vm>);
    let policy_vms: [PolicyVm; 3] = [
        ("global-fifo", || shapes::global_queue_vm(false)),
        ("local-lifo", || shapes::local_queue_vm(false, false)),
        ("migrating-lifo", || shapes::local_queue_vm(true, false)),
    ];
    for (policy, mk) in policy_vms {
        let jobs = scale.farm_jobs;
        let d = run_reps(reps, mk, |vm| shapes::farm_workload(vm, jobs));
        let row = BenchRow::from_dist("shape", &format!("farm-{policy}"), "ns/run", &d);
        print_row(&row);
        rows.push(row);
        let depth = scale.tree_depth;
        let d = run_reps(reps, mk, |vm| shapes::tree_workload(vm, depth));
        let row = BenchRow::from_dist("shape", &format!("tree-{policy}"), "ns/run", &d);
        print_row(&row);
        rows.push(row);
    }

    // --- E2 addendum: locked vs lock-free dispatch ---
    println!(
        "shape: steal-throughput ({} threads x {} yields)",
        scale.steal_threads, scale.steal_yields
    );
    for vps in [1usize, 2, 4] {
        for locked in [true, false] {
            let tier = if locked { "locked" } else { "lockfree" };
            let vm = shapes::steal_vm(vps, locked, false);
            let d = steal_throughput(&vm, reps, scale.steal_threads, scale.steal_yields);
            vm.shutdown();
            let row = BenchRow::from_dist(
                "shape",
                &format!("steal-throughput-{vps}vp-{tier}"),
                "ns/dispatch",
                &d,
            );
            print_row(&row);
            rows.push(row);
        }
    }

    // --- E2 addendum: priority policy, locked vs banded deque tier ---
    // Same hammer, but the threads carry priorities spanning every band,
    // so the lock-free side exercises the multi-level deque + occupancy
    // bitmask rather than the single-band fast path.
    println!(
        "shape: steal-throughput-prio ({} threads x {} yields)",
        scale.steal_threads, scale.steal_yields
    );
    let mut prio_p50 = [0.0f64; 2]; // [locked, deque] at 4 VPs
    for vps in [1usize, 2, 4] {
        for locked in [true, false] {
            let tier = if locked { "locked" } else { "deque" };
            let vm = shapes::steal_vm_priority(vps, locked, false);
            let d = priority_steal_throughput(&vm, reps, scale.steal_threads, scale.steal_yields);
            vm.shutdown();
            if vps == 4 {
                prio_p50[usize::from(!locked)] = d.p50();
            }
            let row = BenchRow::from_dist(
                "shape",
                &format!("steal-throughput-prio-{vps}vp-{tier}"),
                "ns/dispatch",
                &d,
            );
            print_row(&row);
            rows.push(row);
        }
    }
    let prio_speedup = prio_p50[0] / prio_p50[1];
    // The locked-vs-deque gap is a full-scale claim: the smoke hammer is
    // ~1k dispatches and runs alongside the rest of the tier-1 suite, so
    // there the row is recorded but only advisory.
    let prio_gate = if args.smoke {
        "info:prio-deque>=1.3x-locked@4vp"
    } else {
        "prio-deque>=1.3x-locked@4vp"
    };
    checks.push(Check {
        name: prio_gate.to_string(),
        pass: prio_speedup >= 1.3,
        detail: format!(
            "priority policy at 4 VPs: locked p50 {:.1} ns/dispatch vs deque p50 {:.1} ({:.2}x)",
            prio_p50[0], prio_p50[1], prio_speedup
        ),
    });

    // --- E4: preemption inside critical sections ---
    println!(
        "shape: preemption ({} workers x {} rounds)",
        scale.preempt_workers, scale.preempt_rounds
    );
    for (name, shield) in [("enabled", false), ("shielded", true)] {
        let (workers, rounds) = (scale.preempt_workers, scale.preempt_rounds);
        let d = run_reps(
            reps,
            || shapes::preemption_vm(false),
            |vm| shapes::preemption_run(vm, workers, rounds, shield),
        );
        let row = BenchRow::from_dist("shape", &format!("preemption-{name}"), "ns/run", &d);
        print_row(&row);
        rows.push(row);
    }

    // --- E3: tuple-space locking granularity ---
    println!(
        "shape: tuple-locks ({} keys x {} rounds)",
        scale.tuple_keys, scale.tuple_rounds
    );
    for (name, buckets) in [("per-bucket", 64usize), ("global-lock", 1)] {
        let (keys, rounds) = (scale.tuple_keys, scale.tuple_rounds);
        let d = run_reps(
            reps,
            || VmBuilder::new().vps(2).processors(2).build(),
            |vm| {
                let ts = TupleSpace::with_kind(SpaceKind::Hashed { buckets });
                shapes::tuple_locks_workload(vm, &ts, keys, rounds);
            },
        );
        let row = BenchRow::from_dist("shape", &format!("tuple-locks-{name}"), "ns/run", &d);
        print_row(&row);
        rows.push(row);
    }

    // --- E7: sharded fleets over the partitioned tuple-space fabric.
    // Total VPs (4) and total work stay fixed as the shard count rises,
    // so the rows isolate what partitioning buys: per-partition locks,
    // shorter waiter chains, and shard-local wake-ups. ---
    let shard_counts: &[usize] = if args.smoke { &[1, 2] } else { &[1, 2, 4] };
    println!(
        "shard: farm {} jobs / tree depth {} across {:?} shards (4 VPs total)",
        scale.shard_jobs, scale.shard_tree_depth, shard_counts
    );
    let mut shard_farm_p50: Vec<f64> = Vec::new();
    for &shards in shard_counts {
        let jobs = scale.shard_jobs;
        let d = run_fleet_reps(reps, shards, |fleet, ts| {
            shapes::shard_farm_workload(fleet, ts, jobs, 16);
        });
        shard_farm_p50.push(d.p50());
        let row = BenchRow::from_dist("shard", &format!("farm-{shards}shard"), "ns/run", &d);
        print_row(&row);
        rows.push(row);
        let depth = scale.shard_tree_depth;
        let d = run_fleet_reps(reps, shards, |fleet, _ts| {
            shapes::shard_tree_workload(fleet, depth);
        });
        let row = BenchRow::from_dist("shard", &format!("tree-{shards}shard"), "ns/run", &d);
        print_row(&row);
        rows.push(row);
    }
    // The scaling claim is a full-scale gate (4 shards, 2000 jobs); the
    // smoke tier runs only the 1- and 2-shard rows alongside the rest of
    // tier 1, so there the ratio is recorded but only advisory.
    let top = *shard_counts.last().unwrap();
    let speedup = shard_farm_p50[0] / shard_farm_p50[shard_farm_p50.len() - 1];
    let (gate, bar) = if args.smoke {
        ("info:shard:farm-2shard>=1.2x-1shard", 1.2)
    } else {
        ("shard:farm-4shard>=1.6x-1shard", 1.6)
    };
    checks.push(Check {
        name: gate.to_string(),
        pass: speedup >= bar,
        detail: format!(
            "farm p50 {:.0} ns at 1 shard vs {:.0} ns at {top} shards ({:.2}x, 4 VPs total)",
            shard_farm_p50[0],
            shard_farm_p50[shard_farm_p50.len() - 1],
            speedup
        ),
    });
    // Fleet-wide trace audit over the merged rings: the multi-shard farm
    // must leave no lost wake-up, leaked waiter, or post-cancel wake
    // across any shard's ring once the Lamport merge orders them.
    {
        let fleet = shapes::shard_fleet(top, 4, true);
        let ts = ShardedSpace::new(&fleet);
        shapes::shard_farm_workload(&fleet, &ts, scale.shard_jobs, 16);
        let report = fleet.trace_audit();
        let bad = report
            .findings
            .iter()
            .filter(|f| {
                matches!(
                    f.kind,
                    sting::core::audit::FindingKind::WaiterLeak
                        | sting::core::audit::FindingKind::LostWakeup
                        | sting::core::audit::FindingKind::WakeAfterCancel
                )
            })
            .count();
        checks.push(Check {
            name: format!("shard:merged-audit-clean@{top}shard"),
            pass: bad == 0,
            detail: format!(
                "{bad} wake/waiter violations in the merged {top}-shard farm trace ({} findings total)",
                report.findings.len()
            ),
        });
        fleet.shutdown();
    }

    // --- Storage model: scavenge pauses and allocation churn ---
    println!(
        "gc ({} collections, {} conses)",
        scale.gc_collections, scale.gc_conses
    );
    let d = shapes::gc_minor_pauses(scale.gc_collections);
    let row = BenchRow::from_dist("gc", "minor-pause-64k-nursery", "ns/collection", &d);
    print_row(&row);
    rows.push(row);
    let d = shapes::gc_alloc_churn(scale.gc_conses);
    let row = BenchRow::from_dist("gc", "alloc-churn-16k-nursery", "ns/cons", &d);
    print_row(&row);
    rows.push(row);

    // --- Server: connection-per-thread echo under the reactor ---
    let sscale = if args.smoke {
        sting_bench::server::ServerScale::smoke()
    } else {
        sting_bench::server::ServerScale::full()
    };
    println!(
        "server: echo ({} connections on {} vps, {} echoes)",
        sscale.conns, sscale.vps, sscale.echoes
    );
    let server_backends = sting_bench::server::backends();
    if server_backends.len() == 1 {
        println!("server: io_uring unavailable on this kernel, epoll-only rows");
    }
    for (backend, label) in server_backends {
        match sting_bench::server::run(&sscale, backend, label) {
            Ok((srows, schecks)) => {
                for r in &srows {
                    print_row(r);
                }
                rows.extend(srows);
                checks.extend(schecks);
            }
            Err(e) => checks.push(Check {
                name: format!("server:echo-bench-{label}"),
                pass: false,
                detail: e,
            }),
        }
    }
    // Full-mode acceptance gates comparing the two backends on the same
    // scale: io_uring must hold RTT parity (within 25% — the win is
    // syscall count, not per-op latency) and spend strictly fewer kernel
    // round-trips per delivered wake than epoll, thanks to batched
    // submission.  Smoke runs are too short/noisy to gate on.
    if !args.smoke {
        let find = |name: &str| {
            rows.iter()
                .find(|r| r.suite == "server" && r.name == name)
                .map(|r| r.mean)
        };
        if let (Some(ep_rtt), Some(ur_rtt)) = (find("echo-rtt-epoll"), find("echo-rtt-uring")) {
            checks.push(Check {
                name: "server:uring-rtt-parity".to_string(),
                pass: ur_rtt <= ep_rtt * 1.25,
                detail: format!(
                    "uring p-mean rtt {ur_rtt:.0}ns vs epoll {ep_rtt:.0}ns (gate: <=1.25x)"
                ),
            });
        }
        if let (Some(ep_spw), Some(ur_spw)) = (
            find("syscalls-per-wake-epoll"),
            find("syscalls-per-wake-uring"),
        ) {
            checks.push(Check {
                name: "server:uring-fewer-syscalls-per-wake".to_string(),
                pass: ur_spw < ep_spw,
                detail: format!(
                    "uring {ur_spw:.2} syscalls/wake vs epoll {ep_spw:.2} (batched submission)"
                ),
            });
        }
    }

    // --- Metrics overhead: the same steal-throughput hammer with the
    // latency histograms enabled (the default) vs disabled.  The two VMs
    // are hammered in alternation so clock drift and thermal effects hit
    // both settings equally, and both get a warm-up hammer first. ---
    // The 1vp configuration is the right probe: multi-VP runs settle into
    // per-VM migration modes whose throughput gap dwarfs any plausible
    // instrumentation cost, while the single-VP run is stable and still
    // crosses the instrumented enqueue/dispatch path on every yield.
    println!("overhead: metrics on vs off (1vp lock-free steal-throughput, interleaved)");
    let mk = |metrics_on: bool| {
        VmBuilder::new()
            .vps(1)
            .processors(1)
            .policy(|_| policies::local_fifo().migrating(true).boxed())
            .metrics(metrics_on)
            .build()
    };
    let vm_on = mk(true);
    let vm_off = mk(false);
    // Always full-size: the smoke hammer is too short (~1k dispatches) to
    // resolve a couple of percent above OS jitter, and this pair of rows
    // is the one the ±2% claim rests on.
    let (threads, yields) = (256i64, 64i64);
    shapes::steal_hammer(&vm_on, threads, yields);
    shapes::steal_hammer(&vm_off, threads, yields);
    let mut on_samples = Vec::new();
    let mut off_samples = Vec::new();
    for _ in 0..reps.max(9) {
        for (vm, samples) in [(&vm_on, &mut on_samples), (&vm_off, &mut off_samples)] {
            let start = Instant::now();
            shapes::steal_hammer(vm, threads, yields);
            samples.push(
                start.elapsed().as_nanos() as f64 / shapes::steal_dispatches(threads, yields),
            );
        }
    }
    vm_on.shutdown();
    vm_off.shutdown();
    for (name, samples) in [
        ("steal-throughput-metrics-on", on_samples),
        ("steal-throughput-metrics-off", off_samples),
    ] {
        let d = Dist::from_samples(samples);
        let row = BenchRow::from_dist("overhead", name, "ns/dispatch", &d);
        print_row(&row);
        rows.push(row);
    }
    // The ratio itself comes from a tighter probe: a batched yield loop on
    // a single VP crosses the same instrumented enqueue->dispatch path on
    // every iteration, and comparing the minimum per-batch cost between
    // interleaved metrics-on/metrics-off VMs isolates the instrumentation
    // from the OS jitter that dominates the whole-hammer timings above.
    let yield_iters = scale.figure6_iters.max(10_000);
    let mut per_setting = [f64::INFINITY; 2];
    for _round in 0..3 {
        for (i, metrics_on) in [true, false].into_iter().enumerate() {
            let vm = mk(metrics_on);
            let d = sting_bench::on_thread(&vm, move |cx| {
                sting_bench::time_per_iter(yield_iters, || cx.yield_now())
            });
            vm.shutdown();
            per_setting[i] = per_setting[i].min(d.min());
        }
    }
    let ratio = if per_setting[1] > 0.0 {
        per_setting[0] / per_setting[1]
    } else {
        f64::NAN
    };
    for (i, name) in [("yield-metrics-on"), ("yield-metrics-off")]
        .into_iter()
        .enumerate()
    {
        let d = Dist::from_samples(vec![per_setting[i]]);
        let row = BenchRow::from_dist("overhead", name, "ns/yield", &d);
        print_row(&row);
        rows.push(row);
    }
    checks.push(Check {
        name: "info:metrics-overhead<=2%".to_string(),
        pass: ratio <= 1.02,
        detail: format!(
            "best per-yield dispatch {:.1} ns with metrics vs {:.1} ns without ({:+.2}%)",
            per_setting[0],
            per_setting[1],
            (ratio - 1.0) * 100.0
        ),
    });

    // --- Report ---
    let report = BenchReport {
        config: vec![
            ("mode".to_string(), mode.to_string()),
            ("figure6_iters".to_string(), scale.figure6_iters.to_string()),
            ("reps".to_string(), reps.to_string()),
        ],
        rows,
        checks,
    };
    println!("\nchecks:");
    for c in &report.checks {
        println!(
            "  [{}] {} ({})",
            if c.pass { "pass" } else { "FAIL" },
            c.name,
            c.detail
        );
    }
    if let Err(e) = std::fs::write(&args.out, report.to_json()) {
        eprintln!("failed to write {}: {e}", args.out);
        return ExitCode::from(2);
    }
    println!("report written to {}", args.out);

    let mut failed = false;
    if !gates_ok {
        eprintln!("FAIL: figure6 ordering gates did not pass in 3 attempts");
        failed = true;
    }

    // --- Baseline comparison ---
    if let Some(baseline) = &baseline {
        let path = args.against.as_deref().unwrap_or_default();
        let regressions = compare(baseline, &report, args.threshold);
        if regressions.is_empty() {
            println!(
                "no regressions vs {path} (threshold {:.0}%)",
                args.threshold * 100.0
            );
        } else {
            eprintln!(
                "REGRESSIONS vs {path} (p50 and min both grew more than {:.0}%):",
                args.threshold * 100.0
            );
            for r in &regressions {
                eprintln!(
                    "  {}/{}: {:.0} ns -> {:.0} ns ({:+.1}%)",
                    r.suite,
                    r.name,
                    r.base_p50,
                    r.new_p50,
                    (r.ratio - 1.0) * 100.0
                );
            }
            failed = true;
        }
    }

    if failed {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
