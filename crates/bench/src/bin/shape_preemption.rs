//! Shape experiment E4 (§4.2.2, after Tucker & Gupta): sometimes
//! preemption is best disabled.  The paper's setting is master/slave
//! programs with heavy synchronization: preempting a worker at the wrong
//! moment stalls everyone who depends on it.
//!
//! The sharpest observable instance on a single processor is a preemption
//! that lands *inside a critical section*: the lock holder loses the VP
//! while every other worker burns its active-spin budget, yields, blocks
//! and reschedules.  Wrapping the section in `without-preemption`
//! eliminates those convoys.
//!
//! Run with: `cargo run --release -p sting-bench --bin shape_preemption`

use std::sync::Arc;
use std::time::{Duration, Instant};
use sting::prelude::*;

fn run(vm: &Arc<Vm>, workers: usize, rounds: usize, shield: bool) -> Duration {
    let m = Mutex::new(64, 2);
    let start = Instant::now();
    let ts: Vec<_> = (0..workers)
        .map(|_| {
            let m = m.clone();
            vm.fork(move |cx| {
                let mut acc = 0u64;
                for _ in 0..rounds {
                    let mut section = || {
                        m.with(|| {
                            // A critical section long enough that the 200µs
                            // tick regularly expires inside it.
                            for i in 0..40_000u64 {
                                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
                                if i % 512 == 0 {
                                    cx.checkpoint();
                                }
                            }
                        });
                    };
                    if shield {
                        cx.without_preemption(&mut section);
                    } else {
                        section();
                    }
                    cx.checkpoint();
                }
                acc as i64
            })
        })
        .collect();
    for t in ts {
        t.join_blocking().unwrap();
    }
    start.elapsed()
}

fn main() {
    let workers = 4;
    let rounds = 150;
    println!(
        "E4 — preemption inside critical sections ({workers} workers × {rounds} rounds, 200µs tick)\n"
    );
    for (name, shield) in [
        ("preemption enabled ", false),
        ("without-preemption  ", true),
    ] {
        let vm = VmBuilder::new()
            .vps(1)
            .processors(1)
            .tick(Duration::from_micros(200))
            .trace(true)
            .build();
        let t = run(&vm, workers, rounds, shield);
        let s = vm.counters().snapshot();
        println!(
            "{name} {t:>10.2?}   preemptions={:<6} blocks={:<6} yields={:<6} switches={}",
            s.preemptions, s.blocks, s.yields, s.context_switches
        );
        if let Err(e) = sting_bench::export_trace(&vm, "shape_preemption", name) {
            eprintln!("trace export failed for {name}: {e}");
        }
        vm.shutdown();
    }
    println!(
        "\nA preemption inside the critical section parks the lock holder behind\n\
         every contender, each of which must spin, yield and block before the\n\
         holder resumes — the convoys show up as extra blocks and context\n\
         switches.  without-preemption (the paper's recommendation) avoids them."
    );
}
