//! Shape experiment E4 (§4.2.2, after Tucker & Gupta): sometimes
//! preemption is best disabled.  The paper's setting is master/slave
//! programs with heavy synchronization: preempting a worker at the wrong
//! moment stalls everyone who depends on it.
//!
//! The sharpest observable instance on a single processor is a preemption
//! that lands *inside a critical section*: the lock holder loses the VP
//! while every other worker burns its active-spin budget, yields, blocks
//! and reschedules.  Wrapping the section in `without-preemption`
//! eliminates those convoys.  The workload and VM builder live in
//! [`sting_bench::shapes`] so the unified runner (`bench_all`) measures
//! the same code.
//!
//! Run with: `cargo run --release -p sting-bench --bin shape_preemption`

use std::time::Instant;
use sting_bench::shapes::{preemption_run, preemption_vm};

fn main() {
    let workers = 4;
    let rounds = 150;
    println!(
        "E4 — preemption inside critical sections ({workers} workers × {rounds} rounds, 200µs tick)\n"
    );
    for (name, shield) in [
        ("preemption enabled ", false),
        ("without-preemption  ", true),
    ] {
        let vm = preemption_vm(true);
        let start = Instant::now();
        preemption_run(&vm, workers, rounds, shield);
        let t = start.elapsed();
        let s = vm.counters().snapshot();
        println!(
            "{name} {t:>10.2?}   preemptions={:<6} blocks={:<6} yields={:<6} switches={}",
            s.preemptions, s.blocks, s.yields, s.context_switches
        );
        if let Err(e) = sting_bench::export_trace(&vm, "shape_preemption", name) {
            eprintln!("trace export failed for {name}: {e}");
        }
        vm.shutdown();
    }
    println!(
        "\nA preemption inside the critical section parks the lock holder behind\n\
         every contender, each of which must spin, yield and block before the\n\
         holder resumes — the convoys show up as extra blocks and context\n\
         switches.  without-preemption (the paper's recommendation) avoids them."
    );
}
