//! Shape experiment E3 (§4.2.1): "the implementation minimizes
//! synchronization overhead by associating a mutex with every hash bin
//! rather than having a global mutex on the entire hash table".
//!
//! We compare the per-bucket configuration against the one-bucket (global
//! lock + linear scan) configuration under an associative load with many
//! distinct keys in flight.  The workload lives in
//! [`sting_bench::shapes`] so the unified runner (`bench_all`) measures
//! the same code.
//!
//! Run with: `cargo run --release -p sting-bench --bin shape_tuple_locks`

use std::time::Instant;
use sting::prelude::*;
use sting_bench::shapes::tuple_locks_workload;

fn main() {
    let keys = 256i64;
    let rounds = 20i64;
    println!("E3 — tuple-space locking granularity ({keys} keys × {rounds} rounds × 4 workers)\n");
    for (name, buckets) in [
        ("per-bucket (64 bins)", 64usize),
        ("global lock (1 bin)", 1),
    ] {
        let vm = VmBuilder::new().vps(2).processors(2).trace(true).build();
        let ts = TupleSpace::with_kind(SpaceKind::Hashed { buckets });
        let start = Instant::now();
        tuple_locks_workload(&vm, &ts, keys, rounds);
        let t = start.elapsed();
        println!("{:<24} {:>10.2?}   ({} ops)", name, t, keys * rounds);
        if let Err(e) = sting_bench::export_trace(&vm, "shape_tuple_locks", name) {
            eprintln!("trace export failed for {name}: {e}");
        }
        vm.shutdown();
    }
    println!(
        "\nThe per-bucket configuration wins twice over: shorter chains to scan\n\
         per operation, and concurrent producers/consumers touch different\n\
         mutexes instead of serializing on one."
    );
}
