//! Shape experiment E2 (§3.3): matching the policy manager to the program
//! structure.  A master/slave farm of long-lived workers load-balances
//! perfectly on a global queue; a tree-structured result-parallel program
//! prefers local queues (with migration for balance).
//!
//! The workloads and VM builders live in [`sting_bench::shapes`] so the
//! unified runner (`bench_all`) measures the same code.
//!
//! Run with: `cargo run --release -p sting-bench --bin shape_policies`

use std::sync::Arc;
use std::time::Instant;
use sting::prelude::*;
use sting_bench::shapes::{farm_workload, global_queue_vm, local_queue_vm, tree_workload};

fn run(name: &str, mk: impl Fn() -> Arc<Vm>, workload: impl Fn(&Arc<Vm>)) {
    let vm = mk();
    let start = Instant::now();
    workload(&vm);
    let t = start.elapsed();
    let s = vm.counters().snapshot();
    println!(
        "{:<28} {:>10.2?}  threads={:<6} steals={:<6} blocks={:<6} migrations={}",
        name, t, s.threads_created, s.steals, s.blocks, s.migrations
    );
    if let Err(e) = sting_bench::export_trace(&vm, "shape_policies", name) {
        eprintln!("trace export failed for {name}: {e}");
    }
    vm.shutdown();
}

fn main() {
    println!("E2 — policy/program-structure matching (§3.3)\n");
    println!("master/slave farm (8 long-lived workers, 2000 jobs):");
    run(
        "  global-fifo",
        || global_queue_vm(true),
        |vm| farm_workload(vm, 2000),
    );
    run(
        "  local-lifo (no migration)",
        || local_queue_vm(false, true),
        |vm| farm_workload(vm, 2000),
    );
    run(
        "  migrating-lifo",
        || local_queue_vm(true, true),
        |vm| farm_workload(vm, 2000),
    );

    println!("\nresult-parallel tree (depth 10, 2047 threads):");
    run(
        "  global-fifo",
        || global_queue_vm(true),
        |vm| tree_workload(vm, 10),
    );
    run(
        "  local-lifo (no migration)",
        || local_queue_vm(false, true),
        |vm| tree_workload(vm, 10),
    );
    run(
        "  migrating-lifo",
        || local_queue_vm(true, true),
        |vm| tree_workload(vm, 10),
    );

    println!(
        "\nPaper's claims: farms suit a global queue (workers rarely block, no\n\
         local-queue bookkeeping needed); tree programs suit local LIFO queues\n\
         (depth-first unfolding + stealing), with migration for balance."
    );
}
