//! Shape experiment E2 (§3.3): matching the policy manager to the program
//! structure.  A master/slave farm of long-lived workers load-balances
//! perfectly on a global queue; a tree-structured result-parallel program
//! prefers local queues (with migration for balance).
//!
//! Run with: `cargo run --release -p sting-bench --bin shape_policies`

use std::sync::Arc;
use std::time::Instant;
use sting::core::policies::{self, GlobalQueue, QueueOrder};
use sting::core::PolicyManager;
use sting::prelude::*;

fn farm_workload(vm: &Arc<Vm>, jobs: usize) {
    // Long-lived equal workers pulling from a shared channel of jobs.
    let ch = Channel::unbounded();
    for i in 0..jobs {
        ch.send(Value::Int(i as i64)).unwrap();
    }
    ch.close();
    let workers: Vec<_> = (0..8)
        .map(|_| {
            let ch = ch.clone();
            vm.fork(move |cx| {
                let mut acc = 0i64;
                while let Some(v) = ch.recv() {
                    let mut x = v.as_int().unwrap();
                    for _ in 0..200 {
                        x = x.wrapping_mul(1103515245).wrapping_add(12345);
                    }
                    acc ^= x;
                    cx.checkpoint();
                }
                acc
            })
        })
        .collect();
    for w in workers {
        w.join_blocking().unwrap();
    }
}

fn tree_workload(vm: &Arc<Vm>, depth: u32) {
    fn tree(cx: &Cx, depth: u32) -> i64 {
        if depth == 0 {
            1
        } else {
            let l = cx.fork(move |cx| tree(cx, depth - 1));
            let r = cx.fork(move |cx| tree(cx, depth - 1));
            cx.touch(&l).unwrap().as_int().unwrap() + cx.touch(&r).unwrap().as_int().unwrap()
        }
    }
    let expect = 1i64 << depth;
    let got = vm.run(move |cx| tree(cx, depth)).unwrap().as_int().unwrap();
    assert_eq!(got, expect);
}

fn run(name: &str, mk: impl Fn() -> Arc<Vm>, workload: impl Fn(&Arc<Vm>)) {
    let vm = mk();
    let start = Instant::now();
    workload(&vm);
    let t = start.elapsed();
    let s = vm.counters().snapshot();
    println!(
        "{:<28} {:>10.2?}  threads={:<6} steals={:<6} blocks={:<6} migrations={}",
        name, t, s.threads_created, s.steals, s.blocks, s.migrations
    );
    if let Err(e) = sting_bench::export_trace(&vm, "shape_policies", name) {
        eprintln!("trace export failed for {name}: {e}");
    }
    vm.shutdown();
}

fn global() -> Arc<Vm> {
    let q = GlobalQueue::shared(QueueOrder::Fifo);
    VmBuilder::new()
        .vps(4)
        .policy(move |_| q.policy())
        .trace(true)
        .build()
}

fn local(migrate: bool) -> impl Fn() -> Arc<Vm> {
    move || {
        VmBuilder::new()
            .vps(4)
            .policy(move |_| make_local(migrate))
            .trace(true)
            .build()
    }
}

fn make_local(migrate: bool) -> Box<dyn PolicyManager> {
    policies::local_lifo().migrating(migrate).boxed()
}

fn main() {
    println!("E2 — policy/program-structure matching (§3.3)\n");
    println!("master/slave farm (8 long-lived workers, 2000 jobs):");
    run("  global-fifo", global, |vm| farm_workload(vm, 2000));
    run("  local-lifo (no migration)", local(false), |vm| {
        farm_workload(vm, 2000)
    });
    run("  migrating-lifo", local(true), |vm| {
        farm_workload(vm, 2000)
    });

    println!("\nresult-parallel tree (depth 10, 2047 threads):");
    run("  global-fifo", global, |vm| tree_workload(vm, 10));
    run("  local-lifo (no migration)", local(false), |vm| {
        tree_workload(vm, 10)
    });
    run("  migrating-lifo", local(true), |vm| tree_workload(vm, 10));

    println!(
        "\nPaper's claims: farms suit a global queue (workers rarely block, no\n\
         local-queue bookkeeping needed); tree programs suit local LIFO queues\n\
         (depth-first unfolding + stealing), with migration for balance."
    );
}
