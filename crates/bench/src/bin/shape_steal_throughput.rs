//! Shape experiment E2 addendum (§3.3): locked vs lock-free dispatch.
//!
//! The paper argues that keeping a VP's evaluating-thread queue local and
//! lock-free beats serializing every scheduler operation on a lock.  This
//! bench measures exactly that boundary in our two-tier scheduler: the
//! same migrating-FIFO policy is run once on the Chase–Lev deque tier
//! (the default) and once pinned to the locked policy tier via
//! `LocalQueue::locked(true)`, over 1, 2 and 4 VPs.
//!
//! The workload piles short yielding threads onto VP 0, so every other VP
//! is a thief: each yield is one enqueue + one dequeue, and each steal is
//! the victim-side hand-off the two tiers implement differently (a
//! lock-free `Deque::steal` CAS vs `try_lock` + queue scan).  The VM
//! builder and hammer live in [`sting_bench::shapes`] so the unified
//! runner (`bench_all`) measures the same code.
//!
//! Run with: `cargo run --release -p sting-bench --bin shape_steal_throughput`
//!
//! Flight-recorder artifacts land in `$STING_TRACE_DIR` (default
//! `target/traces`) as `shape_steal_throughput-<config>.json`.

use std::time::Instant;
use sting_bench::shapes::{steal_dispatches, steal_hammer, steal_vm};

const THREADS: i64 = 256;
const YIELDS: i64 = 64;

fn run(vps: usize, locked: bool) -> f64 {
    let tier = if locked { "locked" } else { "lock-free" };
    let vm = steal_vm(vps, locked, true);
    assert_eq!(
        vm.vp(0).unwrap().lock_free_queue(),
        !locked,
        "tier selection must match the configuration"
    );
    steal_hammer(&vm, THREADS, YIELDS); // warm-up: stacks pooled, workers awake
    let start = Instant::now();
    let sum = steal_hammer(&vm, THREADS, YIELDS);
    let t = start.elapsed();
    assert_eq!(sum, (0..THREADS).sum::<i64>());
    let per_op_ns = t.as_nanos() as f64 / steal_dispatches(THREADS, YIELDS);
    let s = vm.counters().snapshot();
    let config = format!("{vps}vp-{tier}");
    println!(
        "{:<16} {:>10.2?}  {:>8.0} ns/dispatch  switches={:<7} migrations={}",
        config, t, per_op_ns, s.context_switches, s.migrations
    );
    if let Err(e) = sting_bench::export_trace(&vm, "shape_steal_throughput", &config) {
        eprintln!("trace export failed for {config}: {e}");
    }
    vm.shutdown();
    per_op_ns
}

fn main() {
    println!(
        "E2 addendum — locked vs lock-free dispatch ({THREADS} threads x {YIELDS} yields, all forked on VP 0)\n"
    );
    let mut rows = Vec::new();
    for vps in [1usize, 2, 4] {
        let locked = run(vps, true);
        let lock_free = run(vps, false);
        rows.push((vps, locked, lock_free));
    }
    println!("\nsummary (ns/dispatch, lower is better):");
    println!(
        "{:>4} {:>12} {:>12} {:>10}",
        "vps", "locked", "lock-free", "speedup"
    );
    for (vps, locked, lock_free) in rows {
        println!(
            "{vps:>4} {locked:>12.0} {lock_free:>12.0} {:>9.2}x",
            locked / lock_free
        );
    }
    println!(
        "\nPaper's claim (§3.3): a lock-free local evaluating-thread queue\n\
         removes scheduler serialization; the gap should widen with VPs as\n\
         thieves contend on the victim's queue."
    );
}
