//! Shape experiment E2 addendum (§3.3): locked vs lock-free dispatch.
//!
//! The paper argues that keeping a VP's evaluating-thread queue local and
//! lock-free beats serializing every scheduler operation on a lock.  This
//! bench measures exactly that boundary in our two-tier scheduler: the
//! same migrating-FIFO policy is run once on the Chase–Lev deque tier
//! (the default) and once pinned to the locked policy tier via
//! `LocalQueue::locked(true)`, over 1, 2 and 4 VPs.
//!
//! The workload piles short yielding threads onto VP 0, so every other VP
//! is a thief: each yield is one enqueue + one dequeue, and each steal is
//! the victim-side hand-off the two tiers implement differently (a
//! lock-free `Deque::steal` CAS vs `try_lock` + queue scan).
//!
//! Run with: `cargo run --release -p sting-bench --bin shape_steal_throughput`
//!
//! Flight-recorder artifacts land in `$STING_TRACE_DIR` (default
//! `target/traces`) as `shape_steal_throughput-<config>.json`.

use std::sync::Arc;
use std::time::Instant;
use sting::core::policies;
use sting::prelude::*;

const THREADS: i64 = 256;
const YIELDS: i64 = 64;

fn build(vps: usize, locked: bool) -> Arc<Vm> {
    VmBuilder::new()
        .vps(vps)
        // One OS worker per VP: without it a single worker drives every VP
        // and the queues are never contended.
        .processors(vps)
        .policy(move |_| {
            policies::local_fifo()
                .migrating(true)
                .locked(locked)
                .boxed()
        })
        .trace(true)
        .build()
}

/// Forks `THREADS` yielding threads onto VP 0 and joins them all; returns
/// the checksum so the work cannot be optimized away.
fn hammer(vm: &Arc<Vm>) -> i64 {
    let threads: Vec<_> = (0..THREADS)
        .map(|i| {
            vm.fork_on(0, move |cx| {
                for _ in 0..YIELDS {
                    cx.yield_now();
                }
                i
            })
            .expect("VP 0 exists")
        })
        .collect();
    threads
        .iter()
        .map(|t| t.join_blocking().unwrap().as_int().unwrap())
        .sum()
}

fn run(vps: usize, locked: bool) -> f64 {
    let tier = if locked { "locked" } else { "lock-free" };
    let vm = build(vps, locked);
    assert_eq!(
        vm.vp(0).unwrap().lock_free_queue(),
        !locked,
        "tier selection must match the configuration"
    );
    hammer(&vm); // warm-up: stacks pooled, workers awake
    let start = Instant::now();
    let sum = hammer(&vm);
    let t = start.elapsed();
    assert_eq!(sum, (0..THREADS).sum::<i64>());
    // One dispatch per yield plus the initial one, per thread.
    let dispatches = (THREADS * (YIELDS + 1)) as f64;
    let per_op_ns = t.as_nanos() as f64 / dispatches;
    let s = vm.counters().snapshot();
    let config = format!("{vps}vp-{tier}");
    println!(
        "{:<16} {:>10.2?}  {:>8.0} ns/dispatch  switches={:<7} migrations={}",
        config, t, per_op_ns, s.context_switches, s.migrations
    );
    if let Err(e) = sting_bench::export_trace(&vm, "shape_steal_throughput", &config) {
        eprintln!("trace export failed for {config}: {e}");
    }
    vm.shutdown();
    per_op_ns
}

fn main() {
    println!(
        "E2 addendum — locked vs lock-free dispatch ({THREADS} threads x {YIELDS} yields, all forked on VP 0)\n"
    );
    let mut rows = Vec::new();
    for vps in [1usize, 2, 4] {
        let locked = run(vps, true);
        let lock_free = run(vps, false);
        rows.push((vps, locked, lock_free));
    }
    println!("\nsummary (ns/dispatch, lower is better):");
    println!(
        "{:>4} {:>12} {:>12} {:>10}",
        "vps", "locked", "lock-free", "speedup"
    );
    for (vps, locked, lock_free) in rows {
        println!(
            "{vps:>4} {locked:>12.0} {lock_free:>12.0} {:>9.2}x",
            locked / lock_free
        );
    }
    println!(
        "\nPaper's claim (§3.3): a lock-free local evaluating-thread queue\n\
         removes scheduler serialization; the gap should widen with VPs as\n\
         thieves contend on the victim's queue."
    );
}
