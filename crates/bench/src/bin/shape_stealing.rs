//! Shape experiment E1 (§4.1.1 / Figure 4): thread stealing throttles
//! process creation, and LIFO scheduling steals far more than FIFO on the
//! Figure 3 primes workload.
//!
//! Run with: `cargo run --release -p sting-bench --bin shape_stealing [limit]`

use std::sync::Arc;
use sting::prelude::*;

fn primes_futures(vm: &Arc<Vm>, limit: i64, lazy: bool, stealable: bool) {
    vm.run(move |cx| {
        let mut primes = Future::spawn(cx, |_| Value::list([Value::Int(2)]));
        let mut i = 3i64;
        while i <= limit {
            let prev = primes.clone();
            let body = move |cx: &Cx| {
                let mut j = 3i64;
                while j * j <= i {
                    if i % j == 0 {
                        return prev.force(cx);
                    }
                    j += 2;
                }
                Value::cons(Value::Int(i), prev.force(cx))
            };
            primes = if lazy {
                Future::delay(&cx.vm(), body)
            } else {
                Future::spawn(cx, body)
            };
            if !stealable {
                // Ablation: forbid the §4.1.1 optimization entirely.
                primes.thread().set_stealable(false);
            }
            i += 2;
        }
        primes.force(cx)
    })
    .unwrap();
}

fn main() {
    let limit: i64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2000);
    println!("E1 — stealing vs scheduling policy (Figure 3 primes, limit {limit})\n");
    println!(
        "{:<22} {:>9} {:>8} {:>8} {:>8} {:>10} {:>10}",
        "configuration", "threads", "TCBs", "steals", "blocks", "switches", "time"
    );
    println!("{}", "-".repeat(82));
    let mut traces = Vec::new();
    for (name, lifo, lazy, stealable, vps) in [
        ("lifo + eager futures", true, false, true, 1),
        ("fifo + eager futures", false, false, true, 1),
        ("lifo + lazy futures", true, true, true, 1),
        ("fifo + lazy futures", false, true, true, 1),
        ("lazy, stealing OFF", true, true, false, 1),
        // Multi-VP row: migration offers from idle VPs plus stealing, so
        // the exported trace shows steal/preempt/migrate events together.
        ("4vp migrating lifo", true, true, true, 4),
    ] {
        let migrating = vps > 1;
        let vm = VmBuilder::new()
            .vps(vps)
            .processors(vps)
            .policy(move |_| {
                if lifo {
                    policies::local_lifo().migrating(migrating).boxed()
                } else {
                    policies::local_fifo().migrating(migrating).boxed()
                }
            })
            .trace(true)
            .build();
        let start = std::time::Instant::now();
        primes_futures(&vm, limit, lazy, stealable);
        let t = start.elapsed();
        let s = vm.counters().snapshot();
        println!(
            "{:<22} {:>9} {:>8} {:>8} {:>8} {:>10} {:>10.2?}",
            name, s.threads_created, s.tcbs_allocated, s.steals, s.blocks, s.context_switches, t
        );
        match sting_bench::export_trace(&vm, "shape_stealing", name) {
            Ok(path) => traces.push(path),
            Err(e) => eprintln!("trace export failed for {name}: {e}"),
        }
        vm.shutdown();
    }
    println!("\ntrace artifacts (open in chrome://tracing or ui.perfetto.dev):");
    for p in &traces {
        println!("  {}", p.display());
    }
    println!(
        "\nPaper's claim: under LIFO \"stealing will occur much more frequently\"\n\
         and stealing \"throttles process creation\" — look for steals ≈ futures\n\
         and a flat TCB count in the LIFO rows."
    );
}
