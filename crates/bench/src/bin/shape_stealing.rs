//! Shape experiment E1 (§4.1.1 / Figure 4): thread stealing throttles
//! process creation, and LIFO scheduling steals far more than FIFO on the
//! Figure 3 primes workload.
//!
//! The workload and configuration sweep live in [`sting_bench::shapes`] so
//! the unified runner (`bench_all`) measures the same code; this binary
//! adds the counter breakdown and flight-recorder export.
//!
//! Run with: `cargo run --release -p sting-bench --bin shape_stealing [limit]`

use sting_bench::shapes::{primes_futures, stealing_vm, STEALING_CONFIGS};

fn main() {
    let limit: i64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2000);
    println!("E1 — stealing vs scheduling policy (Figure 3 primes, limit {limit})\n");
    println!(
        "{:<22} {:>9} {:>8} {:>8} {:>8} {:>10} {:>10}",
        "configuration", "threads", "TCBs", "steals", "blocks", "switches", "time"
    );
    println!("{}", "-".repeat(82));
    let mut traces = Vec::new();
    for cfg in STEALING_CONFIGS {
        let vm = stealing_vm(cfg, true);
        let start = std::time::Instant::now();
        primes_futures(&vm, limit, cfg.lazy, cfg.stealable);
        let t = start.elapsed();
        let s = vm.counters().snapshot();
        println!(
            "{:<22} {:>9} {:>8} {:>8} {:>8} {:>10} {:>10.2?}",
            cfg.name,
            s.threads_created,
            s.tcbs_allocated,
            s.steals,
            s.blocks,
            s.context_switches,
            t
        );
        match sting_bench::export_trace(&vm, "shape_stealing", cfg.name) {
            Ok(path) => traces.push(path),
            Err(e) => eprintln!("trace export failed for {}: {e}", cfg.name),
        }
        vm.shutdown();
    }
    println!("\ntrace artifacts (open in chrome://tracing or ui.perfetto.dev):");
    for p in &traces {
        println!("  {}", p.display());
    }
    println!(
        "\nPaper's claim: under LIFO \"stealing will occur much more frequently\"\n\
         and stealing \"throttles process creation\" — look for steals ≈ futures\n\
         and a flat TCB count in the LIFO rows."
    );
}
