//! Sample distributions for benchmark timings.
//!
//! Mean-only timings hide cold-start skew and tail behaviour (the first
//! iterations of a scheduler benchmark pay TCB-pool misses that no steady
//! state ever sees), so every measurement helper returns a [`Dist`] —
//! a set of per-batch samples summarized as min/mean/p50/p99.

use std::time::Instant;

/// A distribution of nanosecond samples (kept sorted).
#[derive(Debug, Clone, Default)]
pub struct Dist {
    sorted: Vec<f64>,
}

impl Dist {
    /// Builds a distribution from raw samples (any order).
    pub fn from_samples(mut samples: Vec<f64>) -> Dist {
        samples.retain(|s| s.is_finite());
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite samples compare"));
        Dist { sorted: samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the distribution has no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Smallest sample (0.0 when empty).
    pub fn min(&self) -> f64 {
        self.sorted.first().copied().unwrap_or(0.0)
    }

    /// Largest sample (0.0 when empty).
    pub fn max(&self) -> f64 {
        self.sorted.last().copied().unwrap_or(0.0)
    }

    /// Arithmetic mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.sorted.is_empty() {
            0.0
        } else {
            self.sorted.iter().sum::<f64>() / self.sorted.len() as f64
        }
    }

    /// Nearest-rank `q`-quantile, `0.0 ..= 1.0` (0.0 when empty).
    pub fn percentile(&self, q: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.sorted.len() as f64).ceil() as usize).max(1);
        self.sorted[rank - 1]
    }

    /// Median.
    pub fn p50(&self) -> f64 {
        self.percentile(0.50)
    }

    /// 99th percentile.
    pub fn p99(&self) -> f64 {
        self.percentile(0.99)
    }

    /// Returns the distribution with every sample multiplied by `k`
    /// (e.g. halving a ping-pong round into its per-leg cost).
    pub fn scale(mut self, k: f64) -> Dist {
        for s in &mut self.sorted {
            *s *= k;
        }
        self
    }
}

/// Times `f` over at most `iters` calls and returns the distribution of
/// per-iteration costs, in nanoseconds.
///
/// A warm-up phase (an eighth of the budget, capped) runs first so pool
/// misses and lazy initialization do not skew the steady-state samples;
/// the remaining iterations run as up to 32 equal batches, each batch's
/// mean-per-iteration forming one sample (per-call `Instant` reads would
/// dominate operations in the tens of nanoseconds).
///
/// `f` is called exactly `max(iters, 1)` times in total (warm-up and the
/// batching remainder included), so closures indexing a pre-built
/// `iters`-element array stay in bounds and ping-pong protocols that pair
/// each call with a partner action complete cleanly. All arithmetic is
/// `f64` nanoseconds: no `u32` conversion, no panic on huge iteration
/// counts.
pub fn time_per_iter(iters: u64, mut f: impl FnMut()) -> Dist {
    let (warmup, batches, per_batch) = plan_batches(iters);
    for _ in 0..warmup {
        f();
    }
    let mut samples = Vec::with_capacity(batches as usize);
    for _ in 0..batches {
        let start = Instant::now();
        for _ in 0..per_batch {
            f();
        }
        samples.push(start.elapsed().as_nanos() as f64 / per_batch as f64);
    }
    // Run the integer-division remainder untimed so the total call count
    // is exact.
    for _ in 0..iters.max(1) - warmup - batches * per_batch {
        f();
    }
    Dist::from_samples(samples)
}

/// Splits an iteration budget into `(warmup, batches, per_batch)` such that
/// `warmup + batches * per_batch <= iters` always holds. Pure `u64` math —
/// the old `u32::try_from(iters)` panic for budgets over `u32::MAX` is gone.
fn plan_batches(iters: u64) -> (u64, u64, u64) {
    let iters = iters.max(1);
    let warmup = if iters == 1 {
        0
    } else {
        (iters / 8).clamp(1, 10_000).min(iters - 1)
    };
    let remaining = (iters - warmup).max(1);
    let batches = remaining.min(32);
    let per_batch = remaining / batches;
    (warmup, batches, per_batch)
}

/// Runs `f` `reps` times, timing each run; returns the distribution of
/// whole-run durations in nanoseconds.
pub fn time_runs(reps: u64, mut f: impl FnMut()) -> Dist {
    let mut samples = Vec::with_capacity(reps as usize);
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        f();
        samples.push(start.elapsed().as_nanos() as f64);
    }
    Dist::from_samples(samples)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dist_stats() {
        let d = Dist::from_samples(vec![30.0, 10.0, 20.0, 40.0]);
        assert_eq!(d.min(), 10.0);
        assert_eq!(d.max(), 40.0);
        assert_eq!(d.mean(), 25.0);
        assert_eq!(d.p50(), 20.0);
        assert_eq!(d.p99(), 40.0);
        let e = Dist::default();
        assert_eq!((e.min(), e.mean(), e.p50()), (0.0, 0.0, 0.0));
    }

    #[test]
    fn time_per_iter_calls_exactly_budget() {
        for iters in [1u64, 2, 7, 33, 100, 100_000] {
            let mut calls = 0u64;
            let d = time_per_iter(iters, || calls += 1);
            assert_eq!(calls, iters, "call count must match the budget");
            assert!(!d.is_empty());
        }
    }

    #[test]
    fn plan_handles_huge_iter_counts() {
        // The old implementation panicked via u32::try_from for any budget
        // over u32::MAX; the planner must accept any u64 and stay within it.
        for budget in [1u64, 2, 9, u64::from(u32::MAX) + 10, u64::MAX] {
            let (warmup, batches, per_batch) = plan_batches(budget);
            assert!(
                warmup.saturating_add(batches.saturating_mul(per_batch)) <= budget.max(1),
                "plan overruns budget {budget}"
            );
            assert!((1..=32).contains(&batches));
        }
    }

    #[test]
    fn scale_halves() {
        let d = Dist::from_samples(vec![10.0, 30.0]).scale(0.5);
        assert_eq!(d.min(), 5.0);
        assert_eq!(d.max(), 15.0);
    }
}
