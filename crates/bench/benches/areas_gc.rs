//! Storage-model microbenchmarks: allocation and scavenging in the
//! per-thread areas (the paper's storage model, Section 2).

use criterion::{criterion_group, criterion_main, Criterion};
use sting::areas::{Heap, HeapConfig, Val, Word};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("areas");
    g.sample_size(20);

    g.bench_function("cons_young", |b| {
        let mut heap = Heap::new(HeapConfig::default());
        let mut roots: Vec<Word> = Vec::new();
        b.iter(|| {
            let gc = heap.cons(Val::Int(1), Val::Nil, &mut roots);
            criterion::black_box(gc);
        });
    });

    g.bench_function("minor_collection_64k_nursery", |b| {
        b.iter_custom(|iters| {
            let mut heap = Heap::new(HeapConfig {
                young_words: 64 * 1024,
                old_trigger_words: usize::MAX / 2,
            });
            // A rooted survivor set of ~1k pairs.
            let mut roots: Vec<Word> = Vec::new();
            for i in 0..1000 {
                let gc = heap.cons(Val::Int(i), Val::Nil, &mut roots);
                roots.push(gc.word());
            }
            let start = std::time::Instant::now();
            for _ in 0..iters {
                heap.collect_minor(&mut roots);
            }
            start.elapsed()
        });
    });

    g.bench_function("alloc_churn_with_gc", |b| {
        b.iter_custom(|iters| {
            let mut heap = Heap::new(HeapConfig {
                young_words: 16 * 1024,
                old_trigger_words: usize::MAX / 2,
            });
            let mut roots: Vec<Word> = Vec::new();
            let start = std::time::Instant::now();
            for i in 0..iters {
                let _ = heap.cons(Val::Int(i as i64), Val::Nil, &mut roots);
            }
            start.elapsed()
        });
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
