//! E3: per-bucket vs global-lock tuple spaces; representation
//! specializations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sting::prelude::*;
use sting_bench::on_thread;

fn bench_locking(c: &mut Criterion) {
    let mut g = c.benchmark_group("tuple_locking");
    g.sample_size(10);
    for (name, buckets) in [("bins64", 64usize), ("bins1", 1)] {
        g.bench_with_input(
            BenchmarkId::new("buckets", name),
            &buckets,
            |b, &buckets| {
                let vm = VmBuilder::new().vps(1).build();
                let ts = TupleSpace::with_kind(SpaceKind::Hashed { buckets });
                // Keep 256 distinct keys resident so bin length matters.
                for k in 0..256i64 {
                    ts.put(vec![Value::Int(k), Value::Int(0)]);
                }
                b.iter_custom(|iters| {
                    let vm = vm.clone();
                    let ts = ts.clone();
                    on_thread(&vm, move |_cx| {
                        let start = std::time::Instant::now();
                        for i in 0..iters {
                            let k = (i % 256) as i64;
                            let b = ts.get(&Template::new(vec![lit(k), formal()]));
                            ts.put(vec![Value::Int(k), b[0].clone()]);
                        }
                        start.elapsed()
                    })
                });
            },
        );
    }
    g.finish();
}

fn bench_reps(c: &mut Criterion) {
    let mut g = c.benchmark_group("tuple_reps");
    g.sample_size(10);
    for (name, kind) in [
        ("hashed", SpaceKind::Hashed { buckets: 64 }),
        ("queue", SpaceKind::Queue),
        ("bag", SpaceKind::Bag),
        ("shared-var", SpaceKind::SharedVar),
    ] {
        g.bench_with_input(BenchmarkId::new("rep", name), &kind, |b, &kind| {
            let vm = VmBuilder::new().vps(1).build();
            b.iter_custom(|iters| {
                let vm = vm.clone();
                on_thread(&vm, move |_cx| {
                    let ts = TupleSpace::with_kind(kind);
                    let start = std::time::Instant::now();
                    for i in 0..iters {
                        ts.put(vec![Value::Int(i as i64)]);
                        let _ = ts.get(&Template::any(1));
                    }
                    start.elapsed()
                })
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_locking, bench_reps);
criterion_main!(benches);
