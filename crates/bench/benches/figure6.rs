//! Criterion version of the Figure 6 rows (see also the `figure6` binary,
//! which prints the paper-vs-measured table).

use criterion::{criterion_group, criterion_main, Criterion};
use sting::prelude::*;
use sting_bench::{figure6_vm, on_thread};

fn bench_figure6(c: &mut Criterion) {
    let mut g = c.benchmark_group("figure6");
    g.sample_size(20);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(300));

    g.bench_function("thread_creation", |b| {
        let vm = figure6_vm();
        b.iter_custom(|iters| {
            let vm = vm.clone();
            on_thread(&vm, move |cx| {
                let mut keep = Vec::with_capacity(iters as usize);
                let start = std::time::Instant::now();
                for _ in 0..iters {
                    keep.push(cx.delayed(|_| 0i64));
                }
                start.elapsed()
            })
        });
    });

    g.bench_function("fork_and_value", |b| {
        let vm = figure6_vm();
        b.iter_custom(|iters| {
            let vm = vm.clone();
            on_thread(&vm, move |cx| {
                let start = std::time::Instant::now();
                for _ in 0..iters {
                    let t = cx.fork(|_| 0i64);
                    let _ = cx.wait(&t);
                }
                start.elapsed()
            })
        });
    });

    g.bench_function("context_switch", |b| {
        let vm = figure6_vm();
        b.iter_custom(|iters| {
            let vm = vm.clone();
            on_thread(&vm, move |cx| {
                let start = std::time::Instant::now();
                for _ in 0..iters {
                    cx.yield_now();
                }
                start.elapsed()
            })
        });
    });

    g.bench_function("stealing", |b| {
        let vm = figure6_vm();
        b.iter_custom(|iters| {
            let vm = vm.clone();
            on_thread(&vm, move |cx| {
                let ts: Vec<_> = (0..iters).map(|_| cx.delayed(|_| 0i64)).collect();
                let start = std::time::Instant::now();
                for t in &ts {
                    let _ = cx.touch(t);
                }
                start.elapsed()
            })
        });
    });

    g.bench_function("tuple_space_put_get", |b| {
        let vm = figure6_vm();
        b.iter_custom(|iters| {
            let vm = vm.clone();
            on_thread(&vm, move |_cx| {
                let start = std::time::Instant::now();
                for _ in 0..iters {
                    let ts = TupleSpace::new();
                    ts.put(vec![Value::Int(1)]);
                    let _ = ts.get(&Template::any(1));
                }
                start.elapsed()
            })
        });
    });

    g.bench_function("speculative_fork_2", |b| {
        let vm = figure6_vm();
        b.iter_custom(|iters| {
            let vm = vm.clone();
            on_thread(&vm, move |cx| {
                let start = std::time::Instant::now();
                for _ in 0..iters {
                    let a = cx.fork(|_| 0i64);
                    let b2 = cx.fork(|_| 0i64);
                    let _ = wait_for_one(&[a, b2]);
                }
                start.elapsed()
            })
        });
    });

    g.bench_function("barrier_sync_2", |b| {
        let vm = figure6_vm();
        b.iter_custom(|iters| {
            let vm = vm.clone();
            on_thread(&vm, move |cx| {
                let start = std::time::Instant::now();
                for _ in 0..iters {
                    let a = cx.fork(|_| 0i64);
                    let b2 = cx.fork(|_| 0i64);
                    let _ = wait_for_all(&[a, b2]);
                }
                start.elapsed()
            })
        });
    });

    g.finish();
}

criterion_group!(benches, bench_figure6);
criterion_main!(benches);
