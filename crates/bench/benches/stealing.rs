//! E1: the Figure 3 primes workload under LIFO vs FIFO (stealing rates).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;
use sting::prelude::*;

fn primes(vm: &Arc<Vm>, limit: i64) {
    vm.run(move |cx| {
        let mut primes = Future::spawn(cx, |_| Value::list([Value::Int(2)]));
        let mut i = 3i64;
        while i <= limit {
            let prev = primes.clone();
            primes = Future::spawn(cx, move |cx| {
                let mut j = 3i64;
                while j * j <= i {
                    if i % j == 0 {
                        return prev.force(cx);
                    }
                    j += 2;
                }
                Value::cons(Value::Int(i), prev.force(cx))
            });
            i += 2;
        }
        primes.force(cx)
    })
    .unwrap();
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("stealing_primes");
    g.sample_size(10);
    for (name, lifo) in [("lifo", true), ("fifo", false)] {
        g.bench_with_input(BenchmarkId::new("policy", name), &lifo, |b, &lifo| {
            b.iter(|| {
                let vm = VmBuilder::new()
                    .vps(1)
                    .processors(1)
                    .policy(move |_| {
                        if lifo {
                            policies::local_lifo().boxed()
                        } else {
                            policies::local_fifo().boxed()
                        }
                    })
                    .build();
                primes(&vm, 500);
                vm.shutdown();
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
