//! E2: global vs local queues on farm and tree workloads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;
use sting::core::policies::{self, GlobalQueue, QueueOrder};
use sting::prelude::*;

fn tree(vm: &Arc<Vm>, depth: u32) {
    fn go(cx: &Cx, depth: u32) -> i64 {
        if depth == 0 {
            1
        } else {
            let l = cx.fork(move |cx| go(cx, depth - 1));
            let r = cx.fork(move |cx| go(cx, depth - 1));
            cx.touch(&l).unwrap().as_int().unwrap() + cx.touch(&r).unwrap().as_int().unwrap()
        }
    }
    vm.run(move |cx| go(cx, depth)).unwrap();
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("policies_tree");
    g.sample_size(10);
    for name in ["global-fifo", "local-lifo", "migrating-lifo"] {
        g.bench_with_input(BenchmarkId::new("policy", name), &name, |b, &name| {
            b.iter(|| {
                let vm = match name {
                    "global-fifo" => {
                        let q = GlobalQueue::shared(QueueOrder::Fifo);
                        VmBuilder::new().vps(2).policy(move |_| q.policy()).build()
                    }
                    "local-lifo" => VmBuilder::new()
                        .vps(2)
                        .policy(|_| policies::local_lifo().boxed())
                        .build(),
                    _ => VmBuilder::new()
                        .vps(2)
                        .policy(|_| policies::local_lifo().migrating(true).boxed())
                        .build(),
                };
                tree(&vm, 8);
                vm.shutdown();
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
