//! E5: active/passive spinning mutexes (§4.2.1) — sweep the active-spin
//! count under contention.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sting::prelude::*;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("mutex_spins");
    g.sample_size(10);
    for active in [0u32, 16, 256] {
        g.bench_with_input(BenchmarkId::new("active", active), &active, |b, &active| {
            b.iter(|| {
                let vm = VmBuilder::new().vps(1).build();
                let m = Mutex::new(active, 2);
                let ts: Vec<_> = (0..4)
                    .map(|_| {
                        let m = m.clone();
                        vm.fork(move |cx| {
                            for _ in 0..200 {
                                m.with(|| {});
                                cx.checkpoint();
                            }
                            0i64
                        })
                    })
                    .collect();
                for t in ts {
                    t.join_blocking().unwrap();
                }
                vm.shutdown();
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
