//! Tier-1 smoke test for the unified benchmark runner: runs `bench_all`
//! for real (tiny iteration counts), validates the emitted JSON against
//! the schema, asserts the Figure 6 shape orderings, and proves the
//! `--against` regression gate fires on a doctored baseline.

use std::path::Path;
use std::process::Command;
use sting_bench::report::{BenchReport, SCHEMA};

fn run_bench_all(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_bench_all"))
        .args(args)
        .current_dir(env!("CARGO_TARGET_TMPDIR"))
        .output()
        .expect("bench_all spawns")
}

fn tmp(name: &str) -> String {
    Path::new(env!("CARGO_TARGET_TMPDIR"))
        .join(name)
        .to_str()
        .expect("utf-8 tmpdir")
        .to_string()
}

#[test]
fn smoke_run_emits_schema_valid_report_with_sane_shape() {
    let out = tmp("smoke_report.json");
    let result = run_bench_all(&["--smoke", "--iters", "1500", "--reps", "1", "--out", &out]);
    assert!(
        result.status.success(),
        "bench_all --smoke failed\nstdout:\n{}\nstderr:\n{}",
        String::from_utf8_lossy(&result.stdout),
        String::from_utf8_lossy(&result.stderr)
    );

    let text = std::fs::read_to_string(&out).expect("report written");
    assert!(text.contains(SCHEMA), "report carries the schema tag");
    let report = BenchReport::from_json(&text).expect("report parses against the schema");

    // Every Figure 6 row must be present with a full, ordered statistics
    // block and the paper's value attached.
    for (name, _) in sting_bench::PAPER_FIGURE6 {
        let row = report
            .row("figure6", name)
            .unwrap_or_else(|| panic!("missing figure6 row `{name}`"));
        assert!(row.samples >= 1, "{name}: no samples");
        assert!(row.min > 0.0, "{name}: zero min");
        assert!(
            row.min <= row.p50 && row.p50 <= row.p99,
            "{name}: min/p50/p99 out of order ({} / {} / {})",
            row.min,
            row.p50,
            row.p99
        );
        assert!(row.paper_us.is_some(), "{name}: paper value missing");
        assert_eq!(row.unit, "ns/iter");
    }

    // The suites the unified runner promises.
    for (suite, name) in [
        ("shape", "stealing-lifo-lazy"),
        ("shape", "farm-global-fifo"),
        ("shape", "tree-migrating-lifo"),
        ("shape", "steal-throughput-2vp-lockfree"),
        ("shape", "preemption-shielded"),
        ("shape", "tuple-locks-per-bucket"),
        ("gc", "minor-pause-64k-nursery"),
        ("gc", "alloc-churn-16k-nursery"),
        ("overhead", "steal-throughput-metrics-on"),
        ("overhead", "steal-throughput-metrics-off"),
    ] {
        assert!(
            report.row(suite, name).is_some(),
            "missing {suite} row `{name}`"
        );
    }

    // Figure 6 shape orderings: every gating check must have passed (the
    // runner itself re-measures up to three times before giving up, and
    // exits non-zero — caught above — if they still fail).
    let gates: Vec<_> = report
        .checks
        .iter()
        .filter(|c| !c.name.starts_with("info:"))
        .collect();
    assert!(gates.len() >= 5, "expected the five ordering gates");
    for c in &gates {
        assert!(c.pass, "gate `{}` failed: {}", c.name, c.detail);
    }
    // The report-only rows still must be recorded, pass or fail.
    assert!(
        report.checks.iter().any(|c| c.name.starts_with("info:")),
        "info checks missing"
    );
}

#[test]
fn against_flags_synthetic_regression_and_clean_baseline_passes() {
    let out = tmp("against_current.json");
    let result = run_bench_all(&["--smoke", "--iters", "1500", "--reps", "1", "--out", &out]);
    assert!(result.status.success(), "baseline smoke run failed");
    let text = std::fs::read_to_string(&out).expect("report written");

    // Comparing a report against itself: zero regressions, exit 0.  Reuse
    // the measurement by validating compare() directly — rerunning the
    // whole suite would double the test's wall-clock for no new signal.
    let current = BenchReport::from_json(&text).expect("parses");
    assert!(sting_bench::report::compare(&current, &current, 0.10).is_empty());

    // Doctor a baseline: pretend dispatch used to be 10x faster on one
    // row, then ask bench_all to compare a fresh run against it.  The run
    // must exit non-zero and name the slowed row.  Both p50 and min are
    // doctored — the gate requires the floor to have moved too, so a
    // p50-only delta would read as interference and pass.
    let mut doctored = current.clone();
    let target = doctored
        .rows
        .iter_mut()
        .find(|r| r.suite == "gc" && r.name == "alloc-churn-16k-nursery")
        .expect("gc row present");
    target.p50 *= 0.1; // current will read as a 10x regression
    target.min *= 0.1;
    let baseline_path = tmp("against_doctored.json");
    std::fs::write(&baseline_path, doctored.to_json()).expect("baseline written");

    let rerun = run_bench_all(&[
        "--smoke",
        "--iters",
        "1500",
        "--reps",
        "1",
        "--out",
        &tmp("against_rerun.json"),
        "--against",
        &baseline_path,
    ]);
    assert!(
        !rerun.status.success(),
        "bench_all must exit non-zero when a row regressed past the threshold"
    );
    let stderr = String::from_utf8_lossy(&rerun.stderr);
    assert!(
        stderr.contains("REGRESSIONS") && stderr.contains("alloc-churn-16k-nursery"),
        "stderr must name the regressed row, got:\n{stderr}"
    );
}

#[test]
fn committed_artifacts_compare_clean() {
    // The repo-root BENCH_PRn.json artifacts are same-epoch aggregates
    // (see EXPERIMENTS.md, "Reading comparisons on a noisy host"); the
    // newest must show no regression against its predecessor under the
    // same rule `--against` applies.  This is the apples-to-apples form
    // of the gate: a live run's verdict depends on the host's load epoch,
    // but the committed artifacts were measured under matched conditions.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let load = |name: &str| {
        let text =
            std::fs::read_to_string(root.join(name)).unwrap_or_else(|e| panic!("read {name}: {e}"));
        BenchReport::from_json(&text).unwrap_or_else(|e| panic!("parse {name}: {e}"))
    };
    let base = load("BENCH_PR7.json");
    let current = load("BENCH_PR9.json");
    let regs = sting_bench::report::compare(&base, &current, 0.10);
    assert!(
        regs.is_empty(),
        "committed BENCH_PR9.json regressed vs BENCH_PR7.json: {:?}",
        regs.iter()
            .map(|r| format!("{}/{}", r.suite, r.name))
            .collect::<Vec<_>>()
    );
    // And the acceptance gate for the sharded-fleet PR is recorded passing.
    let gate = current
        .checks
        .iter()
        .find(|c| c.name == "shard:farm-4shard>=1.6x-1shard")
        .expect("shard scaling gate recorded in BENCH_PR9.json");
    assert!(
        gate.pass,
        "shard scaling gate failed in committed report: {}",
        gate.detail
    );
}

#[test]
fn against_rejects_malformed_baseline() {
    let bogus = tmp("bogus_baseline.json");
    std::fs::write(&bogus, "{\"schema\": \"other/1\"}").expect("write bogus");
    let result = run_bench_all(&[
        "--smoke",
        "--iters",
        "1500",
        "--reps",
        "1",
        "--out",
        &tmp("bogus_out.json"),
        "--against",
        &bogus,
    ]);
    assert_eq!(
        result.status.code(),
        Some(2),
        "schema mismatch in the baseline must be a usage error, not a regression"
    );
}
