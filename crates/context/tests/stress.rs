//! Stress and property tests for the context layer: many live fibers,
//! interleaved resumption orders, pool churn.

use proptest::prelude::*;
use sting_context::{Fiber, FiberResult, Stack, StackPool};

#[test]
fn hundreds_of_interleaved_fibers() {
    let mut fibers: Vec<Fiber<u64, u64, u64>> = (0..300)
        .map(|i| {
            Fiber::new(Stack::new(16 * 1024), move |sus, mut v: u64| {
                for _ in 0..10 {
                    v = sus.suspend(v + i);
                }
                v
            })
        })
        .collect();
    let mut values: Vec<u64> = vec![0; fibers.len()];
    // Round-robin resumption.
    for _round in 0..10 {
        for (i, f) in fibers.iter_mut().enumerate() {
            values[i] = f.resume(values[i]).unwrap_yield();
        }
    }
    for (i, mut f) in fibers.into_iter().enumerate() {
        let final_v = f.resume(values[i]).unwrap_return();
        assert_eq!(final_v, 10 * i as u64, "fiber {i}");
    }
}

#[test]
fn pool_churn_with_fibers() {
    let mut pool = StackPool::new(16 * 1024, 8);
    for round in 0..100u64 {
        let stack = pool.take();
        let mut f: Fiber<u64, (), u64> = Fiber::new(stack, move |_s, x| x + round);
        let got = f.resume(1).unwrap_return();
        assert_eq!(got, 1 + round);
        pool.put(f.into_stack());
    }
    let (allocated, recycled) = pool.stats();
    assert_eq!(allocated, 100);
    assert!(recycled >= 90, "pool must serve from cache: {recycled}");
}

proptest! {
    /// Any prefix of yields followed by cancellation leaves everything
    /// consistent (destructors run exactly once).
    #[test]
    fn cancel_after_random_prefix(total in 1usize..50, cancel_at in 0usize..50) {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        struct Bump(Arc<AtomicUsize>);
        impl Drop for Bump {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        let d = drops.clone();
        let mut f: Fiber<(), usize, usize> = Fiber::new(Stack::new(16 * 1024), move |sus, _| {
            let _guard = Bump(d);
            for i in 0..total {
                sus.suspend(i);
            }
            total
        });
        let stop = cancel_at.min(total);
        let mut finished = false;
        for k in 0..stop {
            match f.resume(()) {
                FiberResult::Yield(v) => prop_assert_eq!(v, k),
                FiberResult::Return(v) => {
                    prop_assert_eq!(v, total);
                    finished = true;
                    break;
                }
            }
        }
        if !finished && !f.is_done() {
            f.force_unwind();
        }
        drop(f);
        // The guard exists only if the fiber body ever started (stop > 0);
        // a cancelled never-started fiber drops only the closure.
        let expected = usize::from(stop > 0);
        prop_assert_eq!(drops.load(std::sync::atomic::Ordering::SeqCst), expected);
    }
}
