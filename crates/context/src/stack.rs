//! Machine stacks and the per-VP stack recycling pool.
//!
//! STING observes that thread dynamic state is expensive to create relative
//! to the thread objects themselves, so "storage for running threads are
//! cached on VPs and are recycled for immediate reuse when a thread
//! terminates".  [`StackPool`] implements that cache for the stack half of a
//! TCB; the TCB-level pool in `sting-core` composes it.

use std::alloc::{alloc, dealloc, Layout};
use std::ptr::NonNull;

/// Magic word written at the low end of every stack and checked on release;
/// detects the most common overflow pattern (running off the low end).
const CANARY: u64 = 0x5719_CA9A_57AC_50FE;

/// Stack alignment.  16 is what the System V ABI requires; we align the
/// whole allocation so the top is trivially alignable.
const STACK_ALIGN: usize = 16;

/// Minimum stack size accepted by [`Stack::new`].
pub const MIN_STACK_SIZE: usize = 4 * 1024;

/// A heap-allocated machine stack for one execution context.
///
/// The stack is plain heap memory (no guard page — the substrate is pure
/// library code and takes no platform dependencies); a canary word at the
/// low end is checked by [`Stack::check_canary`] and on drop in debug builds.
#[derive(Debug)]
pub struct Stack {
    base: NonNull<u8>,
    size: usize,
}

// SAFETY: the stack is exclusively owned heap memory; moving it between OS
// threads is fine.
unsafe impl Send for Stack {}

impl Stack {
    /// Allocates a stack of at least `size` bytes (rounded up to
    /// [`MIN_STACK_SIZE`] and to the stack alignment).
    ///
    /// # Panics
    ///
    /// Panics on allocation failure.
    pub fn new(size: usize) -> Stack {
        let size = size.max(MIN_STACK_SIZE).next_multiple_of(STACK_ALIGN);
        let layout = Layout::from_size_align(size, STACK_ALIGN).expect("stack layout");
        // SAFETY: `layout` has non-zero size (>= MIN_STACK_SIZE).
        let base = unsafe { alloc(layout) };
        let base = NonNull::new(base).expect("stack allocation failed");
        let stack = Stack { base, size };
        // SAFETY: `base` is a live allocation of `size >= 8` bytes, aligned
        // to 16, so the low word is in bounds and u64-aligned.
        unsafe { (stack.base.as_ptr() as *mut u64).write(CANARY) };
        stack
    }

    /// Size of the stack in bytes.
    pub fn size(&self) -> usize {
        self.size
    }

    /// One-past-the-end (highest) address of the stack; initial stack
    /// pointers are derived from this.
    pub fn top(&self) -> *mut u8 {
        // SAFETY: one-past-the-end of the owned allocation is a valid
        // provenance-carrying pointer to compute.
        unsafe { self.base.as_ptr().add(self.size) }
    }

    /// Lowest address of the stack.
    pub fn limit(&self) -> *mut u8 {
        self.base.as_ptr()
    }

    /// Returns `true` while the overflow canary at the low end is intact.
    pub fn check_canary(&self) -> bool {
        // SAFETY: same word `new` initialised — in bounds, aligned, owned.
        unsafe { (self.base.as_ptr() as *const u64).read() == CANARY }
    }
}

impl Drop for Stack {
    fn drop(&mut self) {
        // Destructors never fail (C-DTOR-FAIL): a clobbered canary is
        // reported by `check_canary` callers (e.g. StackPool::put), not here.
        let layout = Layout::from_size_align(self.size, STACK_ALIGN).expect("stack layout");
        // SAFETY: `base` was allocated in `new` with this exact layout.
        unsafe { dealloc(self.base.as_ptr(), layout) };
    }
}

/// A size-classed cache of stacks, recycled on thread termination.
///
/// The pool is intentionally *not* synchronized: in STING each virtual
/// processor owns its own cache, so recycling never contends.  (`sting-core`
/// keeps one pool per VP.)
#[derive(Debug)]
pub struct StackPool {
    stack_size: usize,
    capacity: usize,
    free: Vec<Stack>,
    /// Stacks handed out over the pool's lifetime.
    allocated: u64,
    /// Hand-outs satisfied from the cache rather than fresh allocation.
    recycled: u64,
}

impl StackPool {
    /// Creates a pool producing stacks of `stack_size` bytes, caching at
    /// most `capacity` free stacks.
    pub fn new(stack_size: usize, capacity: usize) -> StackPool {
        StackPool {
            stack_size: stack_size.max(MIN_STACK_SIZE),
            capacity,
            free: Vec::new(),
            allocated: 0,
            recycled: 0,
        }
    }

    /// Takes a stack from the cache, or allocates a fresh one.
    pub fn take(&mut self) -> Stack {
        self.allocated += 1;
        match self.free.pop() {
            Some(s) => {
                self.recycled += 1;
                s
            }
            None => Stack::new(self.stack_size),
        }
    }

    /// Returns a stack to the cache; drops it if the cache is full or the
    /// stack's canary has been clobbered.
    pub fn put(&mut self, stack: Stack) {
        if self.free.len() < self.capacity && stack.check_canary() {
            self.free.push(stack);
        }
    }

    /// Number of stacks currently cached.
    pub fn cached(&self) -> usize {
        self.free.len()
    }

    /// Total hand-outs and cache-satisfied hand-outs, for instrumentation.
    pub fn stats(&self) -> (u64, u64) {
        (self.allocated, self.recycled)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stack_basics() {
        let s = Stack::new(64 * 1024);
        assert!(s.size() >= 64 * 1024);
        assert!(s.check_canary());
        assert_eq!(s.top() as usize - s.limit() as usize, s.size());
        assert_eq!(s.top() as usize % STACK_ALIGN, 0);
    }

    #[test]
    fn stack_minimum_size_enforced() {
        let s = Stack::new(1);
        assert!(s.size() >= MIN_STACK_SIZE);
    }

    #[test]
    fn pool_recycles() {
        let mut pool = StackPool::new(16 * 1024, 2);
        let a = pool.take();
        let b = pool.take();
        let a_base = a.limit() as usize;
        pool.put(a);
        pool.put(b);
        assert_eq!(pool.cached(), 2);
        let c = pool.take();
        // LIFO reuse: most recently freed stack comes back first.
        assert!(!c.limit().is_null());
        let (allocated, recycled) = pool.stats();
        assert_eq!(allocated, 3);
        assert_eq!(recycled, 1);
        let _ = a_base;
    }

    #[test]
    fn pool_respects_capacity() {
        let mut pool = StackPool::new(16 * 1024, 1);
        let a = pool.take();
        let b = pool.take();
        pool.put(a);
        pool.put(b); // dropped, over capacity
        assert_eq!(pool.cached(), 1);
    }

    #[test]
    fn clobbered_canary_not_recycled() {
        let mut pool = StackPool::new(16 * 1024, 4);
        let s = pool.take();
        // SAFETY: the canary word is in bounds and owned by `s`.
        unsafe { (s.limit() as *mut u64).write(0xDEAD) };
        pool.put(s);
        assert_eq!(pool.cached(), 0);
    }
}
