//! Raw register save/restore: the lowest layer of the substrate.
//!
//! The protocol is the classic symmetric stack switch.  A suspended context
//! is represented by a single stack pointer; the words at and above it hold
//! the callee-saved register file (System V x86-64: `rbx`, `rbp`, `r12`–`r15`
//! plus the `mxcsr` and x87 control words) and a return address.
//!
//! [`switch`] pushes the current register file, stores the resulting stack
//! pointer through `from`, installs `to` as the stack pointer, pops the
//! register file found there and returns — landing either in a previous
//! [`switch`] call (an already-running context) or in the entry trampoline
//! of a context freshly built by [`prepare`].
//!
//! The `arg` word travels across the switch and is returned by the `switch`
//! call that the destination context wakes up in (or handed to the entry
//! function for a fresh context).  Callers thread pointers to exchange
//! structures through it.

use core::arch::global_asm;

/// Entry function type for a fresh context.
///
/// Receives the `task` word given to [`prepare`] and the `arg` word from the
/// first [`switch`] into the context.  Must never return; finish by switching
/// away one final time and ensuring the context is not resumed again.
pub type Entry = extern "C" fn(task: usize, arg: usize) -> !;

#[cfg(target_arch = "x86_64")]
global_asm!(
    // fn sting_ctx_switch(from: *mut *mut u8 (rdi), to: *mut u8 (rsi), arg: usize (rdx)) -> usize
    ".text",
    ".globl sting_ctx_switch",
    ".p2align 4",
    "sting_ctx_switch:",
    "push rbp",
    "push rbx",
    "push r12",
    "push r13",
    "push r14",
    "push r15",
    "sub rsp, 8",
    "stmxcsr [rsp]",
    "fnstcw [rsp + 4]",
    "mov [rdi], rsp",
    "mov rsp, rsi",
    "ldmxcsr [rsp]",
    "fldcw [rsp + 4]",
    "add rsp, 8",
    "pop r15",
    "pop r14",
    "pop r13",
    "pop r12",
    "pop rbx",
    "pop rbp",
    "mov rax, rdx",
    "ret",
    // Entry trampoline for fresh contexts: `prepare` stores the entry
    // function in the r13 slot and the task word in the r12 slot of the
    // initial frame; the first switch into the context pops them and
    // "returns" here with the cross-switch arg in rax.
    ".globl sting_ctx_trampoline",
    ".p2align 4",
    "sting_ctx_trampoline:",
    "mov rdi, r12",
    "mov rsi, rax",
    "xor ebp, ebp",
    "call r13",
    "ud2",
);

#[cfg(target_arch = "x86_64")]
extern "C" {
    fn sting_ctx_switch(from: *mut *mut u8, to: *mut u8, arg: usize) -> usize;
    fn sting_ctx_trampoline();
}

/// Transfers control from the current context to `to`.
///
/// The current context's resume point is stored through `from`; `arg` is
/// delivered to the destination (see module docs).  Returns the `arg` of the
/// switch that eventually resumes this context.
///
/// # Safety
///
/// * `to` must be a stack pointer previously produced by [`prepare`] or
///   stored through a `from` pointer by an earlier [`switch`], and it must
///   not be resumed more than once.
/// * `from` must be valid for a write.
/// * The destination context must not unwind a panic across the switch
///   boundary (the [`fiber`](crate::fiber) layer guarantees this by catching
///   panics at the entry function).
#[inline]
pub unsafe fn switch(from: *mut *mut u8, to: *mut u8, arg: usize) -> usize {
    sting_ctx_switch(from, to, arg)
}

/// Number of machine words in the initial frame written by [`prepare`].
const FRAME_WORDS: usize = 8;

/// Default value of `mxcsr` (all exceptions masked, round-to-nearest).
const MXCSR_DEFAULT: u32 = 0x1F80;
/// Default value of the x87 control word.
const FCW_DEFAULT: u16 = 0x037F;

/// Builds the initial frame for a fresh context on `stack` and returns the
/// suspended-context stack pointer to pass to the first [`switch`].
///
/// `stack_top` must be the one-past-the-end address of a writable stack
/// region (highest address, exclusive).  `entry` is invoked on that stack
/// with `task` and the first switch's `arg` when the context first runs.
///
/// # Safety
///
/// `stack_top` must point one past the end of a region of at least
/// `FRAME_WORDS * 8 + 64` writable bytes that stays alive and is not
/// otherwise used while the context exists.
pub unsafe fn prepare(stack_top: *mut u8, entry: Entry, task: usize) -> *mut u8 {
    // Align down to 16 so the trampoline runs with a 16-byte aligned stack
    // (see layout notes below).
    let top = (stack_top as usize) & !15usize;
    let sp = (top - FRAME_WORDS * 8) as *mut u64;
    // Frame layout (ascending addresses), consumed by the restore half of
    // sting_ctx_switch:
    //   sp + 0 : mxcsr (4 bytes) | fcw (2 bytes) | padding
    //   sp + 1 : r15
    //   sp + 2 : r14
    //   sp + 3 : r13  <- entry function
    //   sp + 4 : r12  <- task word
    //   sp + 5 : rbx
    //   sp + 6 : rbp
    //   sp + 7 : return address <- trampoline
    sp.add(0)
        .write((MXCSR_DEFAULT as u64) | ((FCW_DEFAULT as u64) << 32));
    sp.add(1).write(0);
    sp.add(2).write(0);
    sp.add(3).write(entry as usize as u64);
    sp.add(4).write(task as u64);
    sp.add(5).write(0);
    sp.add(6).write(0);
    sp.add(7)
        .write(sting_ctx_trampoline as unsafe extern "C" fn() as usize as u64);
    sp as *mut u8
}

#[cfg(not(target_arch = "x86_64"))]
compile_error!(
    "sting-context currently implements raw stack switching for x86_64 only; \
     port raw.rs (one switch routine and one trampoline) to this architecture"
);

#[cfg(test)]
mod tests {
    use super::*;

    /// Two-slot exchange used to hop between a host and one context: each
    /// side saves its own stack pointer into its slot when switching to the
    /// other side's slot.
    #[repr(C)]
    struct Exchange {
        host_sp: *mut u8,
        ctx_sp: *mut u8,
    }

    extern "C" fn ping_entry(task: usize, mut arg: usize) -> ! {
        let exch = task as *mut Exchange;
        for _ in 0..3 {
            // SAFETY: `exch` points at the test's stack-resident Exchange,
            // alive for the whole test; host_sp was just stored by the host's
            // switch into us.
            arg = unsafe { switch(&mut (*exch).ctx_sp, (*exch).host_sp, arg + 1) };
        }
        // SAFETY: as above; the scratch context is never resumed.
        unsafe {
            let mut scratch: *mut u8 = core::ptr::null_mut();
            switch(&mut scratch, (*exch).host_sp, arg + 1);
        }
        unreachable!("context resumed after completion");
    }

    #[test]
    fn raw_round_trips() {
        let mut stack = vec![0u8; 64 * 1024];
        // SAFETY: one-past-the-end of the live Vec allocation.
        let top = unsafe { stack.as_mut_ptr().add(stack.len()) };
        let mut exch = Exchange {
            host_sp: core::ptr::null_mut(),
            ctx_sp: core::ptr::null_mut(),
        };
        // SAFETY: `top` bounds a 64 KiB writable region that outlives the
        // context; `exch` lives on this frame for the whole test.
        exch.ctx_sp = unsafe { prepare(top, ping_entry, &mut exch as *mut Exchange as usize) };
        let mut v = 10usize;
        for _ in 0..4 {
            // SAFETY: `ctx_sp` came from `prepare`, then from the context's
            // own suspending switches — each value resumed exactly once.
            v = unsafe { switch(&mut exch.host_sp, exch.ctx_sp, v) };
        }
        assert_eq!(v, 14);
    }

    #[test]
    fn arg_travels_both_ways() {
        extern "C" fn doubler(task: usize, mut arg: usize) -> ! {
            let exch = task as *mut Exchange;
            loop {
                // SAFETY: `exch` is the test's stack-resident Exchange, alive
                // for the whole test; host_sp was stored by the host's switch.
                arg = unsafe { switch(&mut (*exch).ctx_sp, (*exch).host_sp, arg * 2) };
                if arg == 0 {
                    // Host asked us to finish.
                    // SAFETY: as above; the scratch context is never resumed.
                    unsafe {
                        let mut scratch: *mut u8 = core::ptr::null_mut();
                        switch(&mut scratch, (*exch).host_sp, usize::MAX);
                    }
                    unreachable!();
                }
            }
        }
        let mut stack = vec![0u8; 64 * 1024];
        // SAFETY: one-past-the-end of the live Vec allocation.
        let top = unsafe { stack.as_mut_ptr().add(stack.len()) };
        let mut exch = Exchange {
            host_sp: core::ptr::null_mut(),
            ctx_sp: core::ptr::null_mut(),
        };
        // SAFETY: `top` bounds a 64 KiB writable region that outlives the
        // context; `exch` lives on this frame for the whole test.
        exch.ctx_sp = unsafe { prepare(top, doubler, &mut exch as *mut Exchange as usize) };
        for i in 1..10usize {
            // SAFETY: `ctx_sp` alternates between values stored by the
            // context's suspending switches; each is resumed exactly once.
            let got = unsafe { switch(&mut exch.host_sp, exch.ctx_sp, i) };
            assert_eq!(got, i * 2);
        }
        // SAFETY: as above — the final resume delivers the stop signal.
        let done = unsafe { switch(&mut exch.host_sp, exch.ctx_sp, 0) };
        assert_eq!(done, usize::MAX);
    }
}
