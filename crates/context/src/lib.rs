//! Stackful execution contexts for the STING substrate.
//!
//! STING threads are *first-class* objects whose dynamic context (a thread
//! control block, or TCB) owns a real machine stack.  The thread controller
//! moves between threads by saving and restoring a handful of registers —
//! the paper describes the controller as "written entirely in Scheme with the
//! exception of a few primitive operations to save and restore registers".
//! This crate is those primitive operations, packaged three ways:
//!
//! * [`raw`] — the register save/restore primitive itself ([`raw::switch`])
//!   plus initial-frame preparation ([`raw::prepare`]).
//! * [`stack`] — heap-allocated machine stacks ([`Stack`]) and a recycling
//!   pool ([`StackPool`]), mirroring the paper's observation that "storage
//!   for running threads are cached on VPs and are recycled for immediate
//!   reuse when a thread terminates".
//! * [`fiber`] — a safe, typed coroutine ([`Fiber`]) built on the two layers
//!   below.  A fiber can be resumed with an input value and suspends or
//!   completes with an output value; panics propagate to the resumer and a
//!   suspended fiber can be [forcibly unwound](Fiber::force_unwind) so that
//!   destructors on its stack run.
//!
//! # Example
//!
//! ```
//! use sting_context::{Fiber, Stack};
//!
//! let mut fib = Fiber::new(Stack::new(32 * 1024), |sus, first: i32| {
//!     let second = sus.suspend(first + 1);
//!     second * 2
//! });
//! assert_eq!(fib.resume(10).unwrap_yield(), 11);
//! assert_eq!(fib.resume(21).unwrap_return(), 42);
//! ```

#![deny(missing_docs)]

pub mod fiber;
pub mod raw;
pub mod stack;

pub use fiber::{Fiber, FiberResult, ForcedUnwind, Suspender};
pub use stack::{Stack, StackPool};
