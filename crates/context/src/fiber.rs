//! Typed, panic-safe coroutines over the raw switching layer.
//!
//! A [`Fiber`] owns a [`Stack`] and a suspended computation.  The host
//! resumes it with an input value; the fiber either *yields* an output and
//! waits for the next input, or *returns* a final output.  Panics inside the
//! fiber are caught at the entry frame and re-raised in the resumer, so no
//! unwind ever crosses the assembly switch.  A suspended fiber can be
//! [forcibly unwound](Fiber::force_unwind), which makes its pending
//! [`Suspender::suspend`] call panic with [`ForcedUnwind`] so destructors on
//! the fiber stack run; dropping a live fiber does this automatically.
//!
//! `sting-core` builds TCBs directly on this type: the input is the
//! scheduler's wake-up message, the yield type is the thread's reason for
//! re-entering the thread controller.

use crate::raw;
use crate::stack::Stack;
use std::any::Any;
use std::panic::{self, AssertUnwindSafe};

/// Panic payload used to forcibly unwind a suspended fiber.
///
/// User code must not catch and swallow this; the fiber layer rethrows it
/// after `catch_unwind` so cancellation is reliable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ForcedUnwind;

/// Outcome of a [`Fiber::resume`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FiberResult<Y, R> {
    /// The fiber suspended with this value and can be resumed again.
    Yield(Y),
    /// The fiber ran to completion with this value.
    Return(R),
}

impl<Y, R> FiberResult<Y, R> {
    /// Returns the yielded value.
    ///
    /// # Panics
    ///
    /// Panics if the fiber completed instead.
    pub fn unwrap_yield(self) -> Y {
        match self {
            FiberResult::Yield(y) => y,
            FiberResult::Return(_) => panic!("fiber completed; expected a yield"),
        }
    }

    /// Returns the final value.
    ///
    /// # Panics
    ///
    /// Panics if the fiber yielded instead.
    pub fn unwrap_return(self) -> R {
        match self {
            FiberResult::Return(r) => r,
            FiberResult::Yield(_) => panic!("fiber yielded; expected completion"),
        }
    }
}

enum Input<I> {
    Value(I),
    Cancel,
}

enum Output<Y, R> {
    Yielded(Y),
    Returned(R),
    Cancelled,
    Panicked(Box<dyn Any + Send>),
}

struct Exchange<I, Y, R> {
    host_sp: *mut u8,
    fiber_sp: *mut u8,
    input: Option<Input<I>>,
    output: Option<Output<Y, R>>,
}

/// Handle the fiber body uses to suspend itself.
pub struct Suspender<I, Y, R> {
    exch: *mut Exchange<I, Y, R>,
}

impl<I, Y, R> Suspender<I, Y, R> {
    /// Suspends the fiber, delivering `value` to the resumer, and returns
    /// the input of the next [`Fiber::resume`].
    ///
    /// # Panics
    ///
    /// Panics with [`ForcedUnwind`] if the host cancels the fiber instead of
    /// resuming it; do not catch this.
    pub fn suspend(&mut self, value: Y) -> I {
        // SAFETY: `exch` points into the host-owned `Fiber::exch` box, which
        // outlives the fiber body; `host_sp` was stored by the `switch` in
        // `hop` that resumed us, so switching to it lands in that call.
        unsafe {
            (*self.exch).output = Some(Output::Yielded(value));
            let host = (*self.exch).host_sp;
            raw::switch(&mut (*self.exch).fiber_sp, host, 0);
            match (*self.exch).input.take() {
                Some(Input::Value(i)) => i,
                Some(Input::Cancel) => panic::panic_any(ForcedUnwind),
                None => unreachable!("fiber resumed without input"),
            }
        }
    }
}

/// Installs (once per process) a panic-hook filter that silences
/// [`ForcedUnwind`] panics.
///
/// Cancellation is control flow, not an error: the hook's work — message
/// formatting and, with `RUST_BACKTRACE`, backtrace capture — is not worth
/// reporting for it, and more importantly can need tens of kilobytes of
/// stack.  The `ForcedUnwind` panic is raised inside the fiber's pending
/// `suspend` call, i.e. *on the fiber stack*, which may be only a few
/// kilobytes with no guard page; letting the default hook run there
/// overflows the stack and corrupts adjacent heap memory.
fn silence_forced_unwind_in_hook() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<ForcedUnwind>().is_none() {
                prev(info);
            }
        }));
    });
}

/// The boxed fiber body.
type Body<I, Y, R> = Box<dyn FnOnce(&mut Suspender<I, Y, R>, I) -> R + Send>;

struct Task<I, Y, R> {
    f: Body<I, Y, R>,
    exch: *mut Exchange<I, Y, R>,
}

extern "C" fn fiber_entry<I, Y, R>(task: usize, _arg: usize) -> ! {
    let exch;
    {
        // Scope everything droppable so nothing with a destructor is live at
        // the final switch below.
        // SAFETY: `task` is the word `Fiber::new` passed to `raw::prepare`,
        // a leaked `Box<Task>` delivered here exactly once by the trampoline.
        let task = unsafe { Box::from_raw(task as *mut Task<I, Y, R>) };
        exch = task.exch;
        let f = task.f;
        // SAFETY: `exch` points into the live `Fiber::exch` box, and only one
        // side of the switch protocol touches it at a time.
        let first = unsafe { (*exch).input.take() };
        let out = match first {
            Some(Input::Value(i)) => {
                let mut sus = Suspender { exch };
                match panic::catch_unwind(AssertUnwindSafe(move || f(&mut sus, i))) {
                    Ok(r) => Output::Returned(r),
                    Err(p) if p.is::<ForcedUnwind>() => Output::Cancelled,
                    Err(p) => Output::Panicked(p),
                }
            }
            Some(Input::Cancel) => Output::Cancelled,
            None => unreachable!("fiber started without input"),
        };
        // SAFETY: as above — the host is suspended in `hop`, not reading.
        unsafe { (*exch).output = Some(out) };
    }
    // SAFETY: `host_sp` was stored by the `hop` switch that resumed us; this
    // final switch never returns (the scratch slot is never resumed).
    unsafe {
        let mut scratch: *mut u8 = core::ptr::null_mut();
        raw::switch(&mut scratch, (*exch).host_sp, 0);
    }
    unreachable!("completed fiber was resumed");
}

/// A suspended stackful computation with typed resume/yield values.
///
/// See the [module docs](self) and the crate-level example.
pub struct Fiber<I, Y, R> {
    exch: Box<Exchange<I, Y, R>>,
    stack: Option<Stack>,
    done: bool,
}

// SAFETY: a suspended fiber is inert — its stack and exchange cell are only
// touched through `&mut self` resume calls — so moving it between OS threads
// is sound whenever the values it carries are themselves `Send`.  The body
// closure is already required to be `Send` by `Fiber::new`.
unsafe impl<I: Send, Y: Send, R: Send> Send for Fiber<I, Y, R> {}

impl<I, Y, R> std::fmt::Debug for Fiber<I, Y, R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fiber")
            .field("done", &self.done)
            .field(
                "stack_size",
                &self.stack.as_ref().map(Stack::size).unwrap_or(0),
            )
            .finish()
    }
}

impl<I, Y, R> Fiber<I, Y, R> {
    /// Creates a fiber that will run `f` on `stack` when first resumed.
    pub fn new<F>(stack: Stack, f: F) -> Fiber<I, Y, R>
    where
        F: FnOnce(&mut Suspender<I, Y, R>, I) -> R + Send + 'static,
    {
        // Must happen before any fiber can be cancelled; doing it here, on
        // the host stack, keeps the cancellation path itself lean.
        silence_forced_unwind_in_hook();
        let mut exch = Box::new(Exchange {
            host_sp: core::ptr::null_mut(),
            fiber_sp: core::ptr::null_mut(),
            input: None,
            output: None,
        });
        let task = Box::new(Task::<I, Y, R> {
            f: Box::new(f),
            exch: &mut *exch,
        });
        // SAFETY: `stack.top()` is one past the end of a live, exclusively
        // owned allocation of at least MIN_STACK_SIZE writable bytes, kept
        // alive by the returned Fiber for as long as the context exists.
        let sp = unsafe {
            raw::prepare(
                stack.top(),
                fiber_entry::<I, Y, R>,
                Box::into_raw(task) as usize,
            )
        };
        exch.fiber_sp = sp;
        Fiber {
            exch,
            stack: Some(stack),
            done: false,
        }
    }

    /// Whether the fiber has completed (returned, panicked, or been
    /// cancelled) and may not be resumed again.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Resumes the fiber with `input`.
    ///
    /// # Panics
    ///
    /// Panics if the fiber already completed, and re-raises any panic the
    /// fiber body escaped with.
    pub fn resume(&mut self, input: I) -> FiberResult<Y, R> {
        assert!(!self.done, "resumed a completed fiber");
        match self.hop(Input::Value(input)) {
            Output::Yielded(y) => FiberResult::Yield(y),
            Output::Returned(r) => {
                self.done = true;
                FiberResult::Return(r)
            }
            Output::Cancelled => {
                // Only possible if user code caught ForcedUnwind without a
                // cancel request; treat as completion.
                self.done = true;
                panic!("fiber cancelled itself without a cancel request");
            }
            Output::Panicked(p) => {
                self.done = true;
                panic::resume_unwind(p);
            }
        }
    }

    /// Cancels a suspended fiber: its pending suspend panics with
    /// [`ForcedUnwind`], destructors on its stack run, and the fiber becomes
    /// done.  No-op if already done.
    pub fn force_unwind(&mut self) {
        if self.done {
            return;
        }
        match self.hop(Input::Cancel) {
            Output::Cancelled => self.done = true,
            Output::Panicked(p) => {
                self.done = true;
                panic::resume_unwind(p);
            }
            Output::Returned(_) | Output::Yielded(_) => {
                // A fiber that yields or returns normally while being
                // cancelled swallowed ForcedUnwind; surface the bug.
                self.done = true;
                panic!("fiber ignored a forced unwind");
            }
        }
    }

    /// Consumes the fiber and returns its stack for recycling, cancelling
    /// it first if still suspended.
    pub fn into_stack(mut self) -> Stack {
        self.force_unwind();
        self.stack.take().expect("fiber stack present")
    }

    fn hop(&mut self, input: Input<I>) -> Output<Y, R> {
        self.exch.input = Some(input);
        // SAFETY: `fiber_sp` came from `raw::prepare` (fresh fiber) or was
        // stored by the fiber's own suspend switch, and `!self.done` (checked
        // by both callers) means it has not been resumed since.
        unsafe {
            let to = self.exch.fiber_sp;
            raw::switch(&mut self.exch.host_sp, to, 0);
        }
        self.exch.output.take().expect("fiber produced no output")
    }
}

impl<I, Y, R> Drop for Fiber<I, Y, R> {
    fn drop(&mut self) {
        if !self.done {
            // Ensure destructors on the fiber stack run. Swallow secondary
            // panics: destructors never fail (C-DTOR-FAIL), and aborting in
            // drop would take down the whole VP.
            let _ = panic::catch_unwind(AssertUnwindSafe(|| self.force_unwind()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use std::sync::Arc;

    fn stack() -> Stack {
        Stack::new(64 * 1024)
    }

    #[test]
    fn yields_and_returns() {
        let mut f = Fiber::new(stack(), |sus, a: i32| {
            let b = sus.suspend(a + 1);
            let c = sus.suspend(b + 10);
            a + b + c
        });
        assert_eq!(f.resume(1), FiberResult::Yield(2));
        assert_eq!(f.resume(2), FiberResult::Yield(12));
        assert_eq!(f.resume(3), FiberResult::Return(6));
        assert!(f.is_done());
    }

    #[test]
    fn immediate_return() {
        let mut f: Fiber<u64, (), u64> = Fiber::new(stack(), |_sus, x| x * 3);
        assert_eq!(f.resume(7), FiberResult::Return(21));
    }

    #[test]
    #[should_panic(expected = "resumed a completed fiber")]
    fn resume_after_done_panics() {
        let mut f: Fiber<u64, (), u64> = Fiber::new(stack(), |_sus, x| x);
        let _ = f.resume(1);
        let _ = f.resume(2);
    }

    #[test]
    fn panic_propagates_to_resumer() {
        let mut f: Fiber<u64, (), u64> = Fiber::new(stack(), |_sus, _x| panic!("boom"));
        let err = panic::catch_unwind(AssertUnwindSafe(|| f.resume(0))).unwrap_err();
        assert_eq!(err.downcast_ref::<&str>(), Some(&"boom"));
        assert!(f.is_done());
    }

    #[test]
    fn forced_unwind_runs_destructors() {
        struct SetOnDrop(Arc<AtomicBool>);
        impl Drop for SetOnDrop {
            fn drop(&mut self) {
                self.0.store(true, Ordering::SeqCst);
            }
        }
        let dropped = Arc::new(AtomicBool::new(false));
        let d = dropped.clone();
        let mut f = Fiber::new(stack(), move |sus, _: ()| {
            let _guard = SetOnDrop(d);
            sus.suspend(());
            // Never reached when cancelled.
        });
        f.resume(()).unwrap_yield();
        assert!(!dropped.load(Ordering::SeqCst));
        f.force_unwind();
        assert!(dropped.load(Ordering::SeqCst));
        assert!(f.is_done());
    }

    #[test]
    fn drop_cancels_suspended_fiber() {
        let count = Arc::new(AtomicUsize::new(0));
        struct Bump(Arc<AtomicUsize>);
        impl Drop for Bump {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        {
            let c = count.clone();
            let mut f = Fiber::new(stack(), move |sus, _: ()| {
                let _a = Bump(c.clone());
                let _b = Bump(c);
                sus.suspend(());
            });
            f.resume(()).unwrap_yield();
            // Dropped here while suspended.
        }
        assert_eq!(count.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn drop_of_never_started_fiber_drops_closure() {
        let count = Arc::new(AtomicUsize::new(0));
        struct Bump(Arc<AtomicUsize>);
        impl Drop for Bump {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        {
            let b = Bump(count.clone());
            let _f: Fiber<(), (), ()> = Fiber::new(stack(), move |_sus, _| {
                let _keep = &b;
            });
        }
        assert_eq!(count.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn into_stack_recycles() {
        let mut f: Fiber<u8, (), u8> = Fiber::new(stack(), |_sus, x| x);
        let _ = f.resume(0);
        let s = f.into_stack();
        assert!(s.check_canary());
    }

    #[test]
    fn into_stack_on_suspended_fiber_cancels_first() {
        let mut f = Fiber::new(stack(), |sus, _: ()| {
            sus.suspend(());
        });
        f.resume(()).unwrap_yield();
        let s = f.into_stack();
        assert!(s.check_canary());
    }

    #[test]
    fn fibers_are_send() {
        fn assert_send<T: Send>(_t: &T) {}
        let f: Fiber<i32, (), i32> = Fiber::new(stack(), |_sus, x| x);
        assert_send(&f);
        let mut f = f;
        std::thread::spawn(move || {
            assert_eq!(f.resume(5), FiberResult::Return(5));
        })
        .join()
        .unwrap();
    }

    #[test]
    fn deep_yield_sequence() {
        let mut f = Fiber::new(stack(), |sus, first: usize| {
            let mut acc = first;
            for _ in 0..1000 {
                acc = sus.suspend(acc + 1);
            }
            acc
        });
        let mut v = 0usize;
        for _ in 0..1000 {
            v = f.resume(v).unwrap_yield();
        }
        assert_eq!(f.resume(v).unwrap_return(), 1000);
    }

    #[test]
    fn nested_fibers() {
        let mut outer = Fiber::new(stack(), |sus, x: i32| {
            let mut inner = Fiber::new(Stack::new(32 * 1024), |sus2, y: i32| {
                let z = sus2.suspend(y * 10);
                z + 1
            });
            let ten_x = inner.resume(x).unwrap_yield();
            let mid = sus.suspend(ten_x);
            inner.resume(mid).unwrap_return()
        });
        assert_eq!(outer.resume(4).unwrap_yield(), 40);
        assert_eq!(outer.resume(100).unwrap_return(), 101);
    }
}
