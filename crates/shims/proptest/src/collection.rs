//! Collection strategies (`prop::collection`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// An inclusive length distribution for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // inclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        if self.lo == self.hi {
            self.lo
        } else {
            self.lo + rng.below(self.hi - self.lo + 1)
        }
    }
}

/// Strategy generating `Vec`s of `element` values.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.sample(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// A vector of values from `element`, with length drawn from `size`
/// (mirrors `proptest::collection::vec`).
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
