//! Offline in-tree shim for the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the subset of the proptest API its tests use:
//! deterministic pseudo-random generation driven by [`strategy::Strategy`]
//! implementations, the `proptest!` / `prop_oneof!` / `prop_assert*!`
//! macros, `prop::collection::vec`, `prop::option::of`, and regex-subset
//! string strategies.  There is no shrinking: a failing case panics with
//! the generated inputs left to the assertion message.

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Prelude mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Mirrors `proptest::prelude::prop` (`prop::collection`, `prop::option`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
    }
}

/// Runs each property over `config.cases` generated inputs.
///
/// Supported grammar (the subset the workspace uses):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(16))]
///     #[test]
///     fn my_prop(x in 0..10i64, v in prop::collection::vec(any::<bool>(), 3)) {
///         prop_assert!(x >= 0);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr) $($(#[$meta:meta])* fn $name:ident ($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
                for _case in 0..config.cases {
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Property-level assertion (no shrinking in the shim: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Property-level equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Property-level inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![$($crate::strategy::Strategy::boxed($s)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn ranges_stay_in_bounds(x in 3..9i64, y in 0u8..4, z in 1usize..2) {
            prop_assert!((3..9).contains(&x));
            prop_assert!(y < 4);
            prop_assert_eq!(z, 1);
        }

        #[test]
        fn vec_lengths(v in prop::collection::vec(any::<bool>(), 0..5), w in prop::collection::vec(0..3i32, 7)) {
            prop_assert!(v.len() < 5);
            prop_assert_eq!(w.len(), 7);
        }

        #[test]
        fn oneof_and_map(v in prop_oneof![Just(1i64), (10..20i64).prop_map(|x| x * 2)]) {
            prop_assert!(v == 1 || (20..40).contains(&v));
        }

        #[test]
        fn regex_subset(s in "[a-c]{2,4}", t in "[ -~&&[^\"\\\\]]{0,10}") {
            prop_assert!((2..=4).contains(&s.len()));
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
            prop_assert!(t.len() <= 10);
            prop_assert!(t.chars().all(|c| (' '..='~').contains(&c) && c != '"' && c != '\\'));
        }

        #[test]
        fn recursion_terminates(n in crate::tests::arb_nested()) {
            prop_assert!(depth(&n) <= 5);
        }
    }

    #[derive(Debug, Clone)]
    enum Nested {
        Leaf(i64),
        Node(Vec<Nested>),
    }

    fn depth(n: &Nested) -> usize {
        match n {
            Nested::Leaf(_) => 1,
            Nested::Node(v) => 1 + v.iter().map(depth).max().unwrap_or(0),
        }
    }

    pub(crate) fn arb_nested() -> impl Strategy<Value = Nested> {
        let leaf = (0..100i64).prop_map(Nested::Leaf);
        leaf.prop_recursive(4, 16, 4, |inner| {
            crate::collection::vec(inner, 0..3).prop_map(Nested::Node)
        })
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::TestRng::deterministic("seed");
        let mut b = crate::test_runner::TestRng::deterministic("seed");
        let s = 0..1000i64;
        for _ in 0..100 {
            assert_eq!(
                Strategy::generate(&s, &mut a),
                Strategy::generate(&s, &mut b)
            );
        }
    }
}
