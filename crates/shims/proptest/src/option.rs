//! Option strategies (`prop::option`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy generating `Option<S::Value>` (≈ 50% `Some`).
#[derive(Debug, Clone)]
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.random_bool() {
            Some(self.inner.generate(rng))
        } else {
            None
        }
    }
}

/// `Some` of `inner` about half the time, else `None` (mirrors
/// `proptest::option::of`).
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}
