//! The [`Strategy`] trait and core combinators.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike real proptest there is no value tree / shrinking: `generate`
/// produces one concrete value per call.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (cheaply clonable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(move |rng| self.generate(rng)))
    }

    /// Builds a recursive strategy: `self` is the leaf case and `branch`
    /// produces a composite given an `inner` strategy for the next level.
    /// Recursion is bounded by `depth` levels; the `_desired_size` and
    /// `_expected_branch_size` hints of the real API are accepted and
    /// ignored.
    fn prop_recursive<F, S2>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        branch: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
        S2: Strategy<Value = Self::Value> + 'static,
    {
        let leaf = self.boxed();
        let mut level = leaf.clone();
        for _ in 0..depth {
            level = OneOf::new(vec![leaf.clone(), branch(level).boxed()]).boxed();
        }
        level
    }
}

/// A type-erased, clonable strategy.
pub struct BoxedStrategy<V>(Arc<dyn Fn(&mut TestRng) -> V>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> BoxedStrategy<V> {
        BoxedStrategy(self.0.clone())
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (self.0)(rng)
    }
}

impl<V> std::fmt::Debug for BoxedStrategy<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<V: Clone>(pub V);

impl<V: Clone> Strategy for Just<V> {
    type Value = V;
    fn generate(&self, _rng: &mut TestRng) -> V {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among boxed strategies (backs `prop_oneof!`).
pub struct OneOf<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> OneOf<V> {
    /// Creates a choice over `arms`; must be non-empty.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> OneOf<V> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { arms }
    }
}

impl<V> Strategy for OneOf<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.arms.len());
        self.arms[i].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                rng.in_range_i128(self.start as i128, self.end as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                rng.in_range_i128(*self.start() as i128, *self.end() as i128 + 1) as $t
            }
        }
    )+};
}

int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
