//! The test runner: configuration and the deterministic RNG.

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` inputs per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// A small, fast, deterministic RNG (splitmix64 stream seeded by name), so
/// failures reproduce across runs without persisted seeds.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the RNG from an arbitrary label (e.g. the property name).
    pub fn deterministic(label: &str) -> TestRng {
        // FNV-1a over the label.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng {
            state: h | 1, // never the all-zero state
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        // splitmix64
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        (self.next_u64() % n as u64) as usize
    }

    /// Uniform `i128` in `[lo, hi)`; requires `lo < hi`.
    pub fn in_range_i128(&mut self, lo: i128, hi: i128) -> i128 {
        debug_assert!(lo < hi);
        let span = (hi - lo) as u128;
        let r = (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64());
        lo + (r % span) as i128
    }

    /// A random bool.
    pub fn random_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// A finite random `f64`, roughly log-uniform over magnitudes.
    pub fn random_f64(&mut self) -> f64 {
        let mantissa = self.in_range_i128(-1_000_000, 1_000_001) as f64;
        let exp = self.in_range_i128(-6, 7) as i32;
        mantissa * 10f64.powi(exp)
    }
}
