//! `any::<T>()` — default strategies per type.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a default generation recipe.
pub trait ArbitraryValue: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone)]
pub struct Any<T>(PhantomData<fn() -> T>);

impl<T: ArbitraryValue> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The default strategy for `T` (mirrors `proptest::prelude::any`).
pub fn any<T: ArbitraryValue>() -> Any<T> {
    Any(PhantomData)
}

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.random_bool()
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),+) => {$(
        impl ArbitraryValue for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                // Bias toward boundary values the way proptest does, so
                // edge cases show up within small case budgets.
                match rng.below(10) {
                    0 => 0,
                    1 => <$t>::MAX,
                    2 => <$t>::MIN,
                    3 => 1 as $t,
                    _ => rng.next_u64() as $t,
                }
            }
        }
    )+};
}

arbitrary_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl ArbitraryValue for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite values only: substrate values compare by `==`, and the
        // workspace properties (clone/hash round trips) assume reflexivity.
        match rng.below(10) {
            0 => 0.0,
            1 => -1.5,
            2 => f64::MAX,
            _ => rng.random_f64(),
        }
    }
}

impl ArbitraryValue for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f64::arbitrary(rng) as f32
    }
}

impl ArbitraryValue for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        match rng.below(4) {
            // Mostly printable ASCII, sometimes wider unicode.
            0 | 1 => char::from_u32(rng.in_range_i128(0x20, 0x7f) as u32).unwrap_or('a'),
            2 => char::from_u32(rng.in_range_i128(0xa1, 0x2000) as u32).unwrap_or('¡'),
            _ => char::from_u32(rng.in_range_i128(0x1f300, 0x1f600) as u32).unwrap_or('🌀'),
        }
    }
}
