//! Regex-subset string strategies: `"[a-z][a-z0-9-]{0,8}"` as a
//! `Strategy<Value = String>`, as in real proptest.
//!
//! Supported syntax: literal characters, `.` (printable ASCII), escapes
//! (`\\`, `\.`, …), character classes with ranges, negation and the
//! `&&[^…]` intersection/subtraction form, and the quantifiers `{n}`,
//! `{m,n}`, `?`, `*`, `+` (the unbounded ones capped at 8 repetitions).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

#[derive(Debug, Clone)]
struct Term {
    chars: Vec<char>, // alternatives for one position
    min: usize,
    max: usize, // inclusive
}

fn printable_ascii() -> Vec<char> {
    (0x20u8..=0x7e).map(char::from).collect()
}

/// Parses one `[...]` class body starting *after* the `[`; consumes the
/// closing `]`. Returns the set of admitted characters.
fn parse_class(it: &mut std::iter::Peekable<std::str::Chars<'_>>, pattern: &str) -> Vec<char> {
    let negated = it.peek() == Some(&'^') && {
        it.next();
        true
    };
    let mut base: Vec<char> = Vec::new();
    let mut subtract: Vec<char> = Vec::new();
    let mut intersect: Option<Vec<char>> = None;
    loop {
        let c = it
            .next()
            .unwrap_or_else(|| panic!("unterminated class in regex strategy {pattern:?}"));
        match c {
            ']' => break,
            '&' if it.peek() == Some(&'&') => {
                it.next();
                assert_eq!(
                    it.next(),
                    Some('['),
                    "expected class after && in regex strategy {pattern:?}"
                );
                let nested_negated = it.peek() == Some(&'^') && {
                    it.next();
                    true
                };
                let mut nested: Vec<char> = Vec::new();
                loop {
                    let c = it
                        .next()
                        .unwrap_or_else(|| panic!("unterminated class in {pattern:?}"));
                    match c {
                        ']' => break,
                        '\\' => nested.push(it.next().expect("escape in class")),
                        c => {
                            if it.peek() == Some(&'-') {
                                let mut probe = it.clone();
                                probe.next();
                                if probe.peek().is_some_and(|&n| n != ']') {
                                    it.next();
                                    let hi = it.next().expect("range end");
                                    nested.extend((c..=hi).collect::<Vec<_>>());
                                    continue;
                                }
                            }
                            nested.push(c);
                        }
                    }
                }
                if nested_negated {
                    subtract.extend(nested);
                } else {
                    intersect = Some(nested);
                }
                // `&&[...]` must be the final element; expect the closing ].
                assert_eq!(
                    it.next(),
                    Some(']'),
                    "expected ] after && class in regex strategy {pattern:?}"
                );
                break;
            }
            '\\' => base.push(it.next().expect("escape in class")),
            c => {
                if it.peek() == Some(&'-') {
                    let mut probe = it.clone();
                    probe.next();
                    if probe.peek().is_some_and(|&n| n != ']') {
                        it.next(); // the '-'
                        let hi = it.next().expect("range end");
                        base.extend((c..=hi).collect::<Vec<_>>());
                        continue;
                    }
                }
                base.push(c);
            }
        }
    }
    if negated {
        base = printable_ascii()
            .into_iter()
            .filter(|c| !base.contains(c))
            .collect();
    }
    if let Some(keep) = intersect {
        base.retain(|c| keep.contains(c));
    }
    base.retain(|c| !subtract.contains(c));
    assert!(
        !base.is_empty(),
        "regex strategy {pattern:?} admits no characters"
    );
    base
}

fn parse_quantifier(it: &mut std::iter::Peekable<std::str::Chars<'_>>) -> (usize, usize) {
    match it.peek() {
        Some('{') => {
            it.next();
            let mut digits = String::new();
            let mut min = None;
            for c in it.by_ref() {
                match c {
                    '}' => break,
                    ',' => {
                        min = Some(digits.parse::<usize>().expect("quantifier bound"));
                        digits.clear();
                    }
                    d => digits.push(d),
                }
            }
            let last = if digits.is_empty() {
                None
            } else {
                Some(digits.parse::<usize>().expect("quantifier bound"))
            };
            match (min, last) {
                (None, Some(n)) => (n, n),     // {n}
                (Some(m), Some(n)) => (m, n),  // {m,n}
                (Some(m), None) => (m, m + 8), // {m,}
                (None, None) => (1, 1),
            }
        }
        Some('?') => {
            it.next();
            (0, 1)
        }
        Some('*') => {
            it.next();
            (0, 8)
        }
        Some('+') => {
            it.next();
            (1, 8)
        }
        _ => (1, 1),
    }
}

fn parse(pattern: &str) -> Vec<Term> {
    let mut terms = Vec::new();
    let mut it = pattern.chars().peekable();
    while let Some(c) = it.next() {
        let chars = match c {
            '[' => parse_class(&mut it, pattern),
            '.' => printable_ascii(),
            '\\' => vec![it.next().expect("trailing escape in regex strategy")],
            c => vec![c],
        };
        let (min, max) = parse_quantifier(&mut it);
        terms.push(Term { chars, min, max });
    }
    terms
}

impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for term in parse(self) {
            let n = if term.min == term.max {
                term.min
            } else {
                term.min + rng.below(term.max - term.min + 1)
            };
            for _ in 0..n {
                out.push(term.chars[rng.below(term.chars.len())]);
            }
        }
        out
    }
}

impl Strategy for String {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        self.as_str().generate(rng)
    }
}
