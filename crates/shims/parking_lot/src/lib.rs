//! Offline in-tree shim for the `parking_lot` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the small subset of the `parking_lot` API it uses,
//! implemented over `std::sync`.  Semantics follow parking_lot where they
//! differ from std: guards are returned directly (no poison `Result`s — a
//! poisoned lock is recovered transparently), and `Condvar` methods take
//! `&mut MutexGuard` instead of consuming the guard.

use std::sync::PoisonError;
use std::time::{Duration, Instant};

/// A mutual exclusion primitive (poison-free `std::sync::Mutex` wrapper).
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`]; unlocks on drop.
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar` can temporarily take the std guard out while
    // waiting and put the reacquired one back, parking_lot-style.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the underlying data.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Whether the mutex is currently held (advisory, racy).
    pub fn is_locked(&self) -> bool {
        match self.inner.try_lock() {
            Ok(_) => false,
            Err(std::sync::TryLockError::Poisoned(_)) => false,
            Err(std::sync::TryLockError::WouldBlock) => true,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// Result of a timed [`Condvar`] wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable usable with [`MutexGuard`] (parking_lot-style:
/// waits take `&mut` guard and reacquire before returning).
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Condvar {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Blocks until notified; the mutex is released while waiting and
    /// reacquired before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present");
        let g = self.inner.wait(g).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
    }

    /// Like [`Condvar::wait`] with a timeout relative to now.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard present");
        let (g, r) = self
            .inner
            .wait_timeout(g, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
        WaitTimeoutResult(r.timed_out())
    }

    /// Like [`Condvar::wait`] with an absolute deadline.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let now = Instant::now();
        if deadline <= now {
            return WaitTimeoutResult(true);
        }
        self.wait_for(guard, deadline - now)
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Condvar {
        Condvar::new()
    }
}

impl std::fmt::Debug for Condvar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Condvar")
    }
}

/// A reader-writer lock (poison-free `std::sync::RwLock` wrapper).
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared-read RAII guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-write RAII guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the underlying data.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking as needed.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Acquires exclusive write access, blocking as needed.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> RwLock<T> {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(!m.is_locked());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        assert!(m.is_locked());
        drop(g);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }

    #[test]
    fn condvar_wait_and_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut g = m.lock();
            *g = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut g = m.lock();
        while !*g {
            cv.wait(&mut g);
        }
        assert!(*g);
        drop(g);
        h.join().unwrap();
    }

    #[test]
    fn condvar_timeout() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(r.timed_out());
        let r = cv.wait_until(&mut g, Instant::now() - Duration::from_millis(1));
        assert!(r.timed_out());
    }
}
