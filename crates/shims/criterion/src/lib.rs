//! Offline in-tree shim for the `criterion` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the small criterion surface its benches use:
//! `criterion_group!`/`criterion_main!`, benchmark groups with
//! `sample_size`/`measurement_time`, `bench_function`/`bench_with_input`,
//! and `Bencher::{iter, iter_custom}`.  Measurements are simple means over
//! the configured samples — no warm-up modelling, outlier analysis or
//! plotting.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("group: {name}");
        BenchmarkGroup {
            samples: 10,
            measurement_time: Duration::from_millis(500),
        }
    }

    /// Benchmarks `f` outside any group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, 10, Duration::from_millis(500), f);
        self
    }
}

/// A named set of benchmarks sharing sampling configuration.
#[derive(Debug)]
pub struct BenchmarkGroup {
    samples: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut BenchmarkGroup {
        self.samples = n.max(2);
        self
    }

    /// Sets the target measurement time per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut BenchmarkGroup {
        self.measurement_time = d;
        self
    }

    /// Accepted for API compatibility; this harness does not warm up.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut BenchmarkGroup {
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut BenchmarkGroup
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into().label, self.samples, self.measurement_time, f);
        self
    }

    /// Benchmarks `f` under `id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut BenchmarkGroup
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&id.into().label, self.samples, self.measurement_time, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A two-part id: function name plus parameter.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// An id carrying only a parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { label: s }
    }
}

/// Hands timing control to the benchmark body.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Option<Duration>,
}

impl Bencher {
    /// Times `iters` calls of `f`.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = Some(start.elapsed());
    }

    /// Lets the body time `iters` iterations itself and report the total.
    pub fn iter_custom<F: FnMut(u64) -> Duration>(&mut self, mut f: F) {
        self.elapsed = Some(f(self.iters));
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, samples: usize, measurement: Duration, mut f: F) {
    // Calibrate: find an iteration count whose sample takes a measurable
    // slice of the budget.
    let mut iters: u64 = 1;
    let per_sample = measurement / u32::try_from(samples.max(1)).unwrap_or(1);
    loop {
        let mut b = Bencher {
            iters,
            elapsed: None,
        };
        f(&mut b);
        let took = b.elapsed.unwrap_or_default();
        if took >= per_sample.min(Duration::from_millis(20)) || iters >= 1 << 20 {
            break;
        }
        iters = iters.saturating_mul(4);
    }
    let mut total = Duration::ZERO;
    let mut total_iters = 0u64;
    for _ in 0..samples {
        let mut b = Bencher {
            iters,
            elapsed: None,
        };
        f(&mut b);
        total += b.elapsed.expect("bench body must call iter or iter_custom");
        total_iters += iters;
    }
    let mean = total.as_secs_f64() / total_iters.max(1) as f64;
    println!("  {label}: {:.3} µs/iter ({total_iters} iters)", mean * 1e6);
}

/// Declares a group function running the listed benchmarks.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running the listed group functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
