//! # sting-areas — the STING storage model
//!
//! Per-thread storage *areas* with generational scavenging collection, the
//! paper's Section 2 storage model: threads allocate in heaps they manage
//! exclusively and collect independently (no global synchronization);
//! long-lived data is promoted to an old generation; references across
//! area boundaries go through entry tables so objects can move while
//! external holders keep stable [`EntryId`]s.
//!
//! The computation language (`sting-scheme`) uses one [`Heap`] per thread
//! for all Scheme data; this crate also stands alone:
//!
//! ```
//! use sting_areas::{Heap, NoRoots, Val};
//!
//! let mut heap = Heap::default();
//! let mut roots: Vec<sting_areas::Word> = Vec::new();
//! let pair = heap.cons(Val::Int(1), Val::Int(2), &mut roots);
//! assert_eq!(heap.car(pair), Val::Int(1));
//! let mut no = NoRoots;
//! heap.set_cdr(pair, Val::Char('x'), &mut no);
//! assert_eq!(heap.cdr(pair), Val::Char('x'));
//! ```

#![deny(missing_docs)]

mod heap;
mod word;

pub use heap::{
    EntryId, Heap, HeapConfig, HeapStats, NoRoots, ObjKind, RootSet, PAUSE_BUCKETS, PROMOTE_AGE,
};
pub use word::{Gc, Space, Val, Word, FIXNUM_MAX, FIXNUM_MIN};
