//! Per-thread storage areas with generational scavenging collection.
//!
//! Each STING thread "allocates data on a stack and heap that it manages
//! exclusively... threads garbage collect their state independently of one
//! another; no global synchronization is necessary in order for a thread to
//! initiate a garbage collection."  A [`Heap`] is one thread's area set:
//!
//! * a **young** generation collected by Cheney-style copying scavenges
//!   (Ungar's generation scavenging, the paper's reference [32]);
//! * an **old** generation receiving objects that survive
//!   [`PROMOTE_AGE`] scavenges, collected rarely by a full copying pass;
//! * a **remembered set** fed by the write barrier on old-object mutation,
//!   so minor collections never scan the old area;
//! * a **native table** pinning substrate values (threads, tuple spaces,
//!   strings from outside) referenced from the heap;
//! * an **entry table** ([`Heap::export`]) giving out stable indices for
//!   objects referenced from *outside* the area — the inter-area reference
//!   mechanism (Bishop's areas, the paper's reference [4]): external
//!   holders keep an [`EntryId`]; collections update the table in place.
//!
//! Collection happens only inside [`Heap::alloc_raw`]-family calls, which
//! take the mutator's roots as a [`RootSet`] callback.

use crate::word::{Gc, Space, Val, Word};
use sting_value::Value;

/// Scavenges an object survives before promotion to the old generation.
pub const PROMOTE_AGE: u8 = 2;

/// Kinds of heap objects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObjKind {
    /// A cons cell: `[car, cdr]`.
    Pair,
    /// A mutable vector of values.
    Vector,
    /// A mutable string (one char per word; simple over compact).
    Str,
    /// A closure: `[code-id, capture...]`.
    Closure,
    /// A single mutable cell (assignment-converted variable).
    Cell,
    /// A boxed float.
    FloatBox,
    /// An environment frame: `[parent, v0, v1, …]`.  Distinguished from
    /// `Vector` so language runtimes can give frames special conversion
    /// semantics (shared mutable state across threads).
    Frame,
}

impl ObjKind {
    fn from_u8(b: u8) -> ObjKind {
        match b {
            0 => ObjKind::Pair,
            1 => ObjKind::Vector,
            2 => ObjKind::Str,
            3 => ObjKind::Closure,
            4 => ObjKind::Cell,
            5 => ObjKind::FloatBox,
            6 => ObjKind::Frame,
            k => unreachable!("bad object kind {k}"),
        }
    }
}

const FORWARD_TAG: u64 = 0xFF;

fn header(kind: ObjKind, len: usize, age: u8) -> u64 {
    (kind as u64) | ((len as u64) << 8) | ((age as u64) << 48)
}

fn header_kind(h: u64) -> ObjKind {
    ObjKind::from_u8((h & 0xFF) as u8)
}

fn header_len(h: u64) -> usize {
    ((h >> 8) & 0xFFFF_FFFF) as usize
}

fn header_age(h: u64) -> u8 {
    ((h >> 48) & 0xFF) as u8
}

fn is_forward(h: u64) -> bool {
    (h & 0xFF) == FORWARD_TAG
}

fn forward_header(to: Word) -> u64 {
    (to.0 << 8) | FORWARD_TAG
}

fn forward_target(h: u64) -> Word {
    Word(h >> 8)
}

/// The mutator's roots: called with a tracer that must visit **every**
/// live heap word the mutator holds (stacks, registers, frames).  The
/// tracer may rewrite each word (objects move).
pub trait RootSet {
    /// Visit every root word.
    fn trace(&mut self, visit: &mut dyn FnMut(&mut Word));
}

/// A `RootSet` over a slice of words (handy in tests and simple clients).
impl RootSet for Vec<Word> {
    fn trace(&mut self, visit: &mut dyn FnMut(&mut Word)) {
        for w in self.iter_mut() {
            visit(w);
        }
    }
}

/// No roots at all (allocation-only clients).
#[derive(Debug, Default, Clone, Copy)]
pub struct NoRoots;

impl RootSet for NoRoots {
    fn trace(&mut self, _visit: &mut dyn FnMut(&mut Word)) {}
}

/// A stable index for an object exported to other areas (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EntryId(u32);

/// Allocation and collection statistics.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct HeapStats {
    /// Words allocated over the heap's lifetime.
    pub words_allocated: u64,
    /// Minor (young-generation) collections.
    pub minor_collections: u64,
    /// Major (full) collections.
    pub major_collections: u64,
    /// Words copied by scavenges.
    pub words_copied: u64,
    /// Objects promoted to the old generation.
    pub promotions: u64,
    /// Total nanoseconds spent in minor collections.
    pub minor_pause_ns: u64,
    /// Total nanoseconds spent in major collections (a major triggered at
    /// the end of a minor is counted here, not in the minor's pause).
    pub major_pause_ns: u64,
    /// Longest single collection pause, in nanoseconds.
    pub max_pause_ns: u64,
    /// Duration of the most recent collection pause, in nanoseconds.
    pub last_pause_ns: u64,
}

/// Number of log2 pause buckets kept per heap (bucket `i` counts pauses in
/// `[2^i, 2^(i+1))` ns; bucket 0 covers `[0, 2)`).  Matches the substrate's
/// `sting_core::metrics` bucketing so embeddings can merge the two without
/// re-binning — the areas crate stands below the substrate and must not
/// depend on it.
pub const PAUSE_BUCKETS: usize = 64;

/// Pending pauses retained for the embedding to drain
/// ([`Heap::take_pending_pauses`]); beyond this, individual samples are
/// dropped (the scalar stats and buckets still record them).
const MAX_PENDING_PAUSES: usize = 128;

fn pause_bucket(ns: u64) -> usize {
    if ns < 2 {
        0
    } else {
        63 - ns.leading_zeros() as usize
    }
}

/// Configuration for a [`Heap`].
#[derive(Debug, Clone, Copy)]
pub struct HeapConfig {
    /// Young-generation semispace size in words.
    pub young_words: usize,
    /// Old-generation size (in words) that triggers a major collection.
    pub old_trigger_words: usize,
}

impl Default for HeapConfig {
    fn default() -> HeapConfig {
        HeapConfig {
            young_words: 64 * 1024,
            old_trigger_words: 1024 * 1024,
        }
    }
}

/// One thread's storage areas.  Not `Sync`: areas are thread-exclusive by
/// design (that is the point).
pub struct Heap {
    young: Vec<u64>,
    old: Vec<u64>,
    /// Old-space slot indices that may hold young references.
    remembered: Vec<usize>,
    natives: Vec<Option<Value>>,
    native_free: Vec<u32>,
    entries: Vec<Option<Word>>,
    entry_free: Vec<u32>,
    config: HeapConfig,
    stats: HeapStats,
    pause_buckets: [u64; PAUSE_BUCKETS],
    pending_pauses: Vec<u64>,
}

impl std::fmt::Debug for Heap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Heap")
            .field("young_used", &self.young.len())
            .field("old_used", &self.old.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl Default for Heap {
    fn default() -> Heap {
        Heap::new(HeapConfig::default())
    }
}

impl Heap {
    /// Creates a heap with the given configuration.
    pub fn new(config: HeapConfig) -> Heap {
        Heap {
            young: Vec::with_capacity(config.young_words),
            old: Vec::new(),
            remembered: Vec::new(),
            natives: Vec::new(),
            native_free: Vec::new(),
            entries: Vec::new(),
            entry_free: Vec::new(),
            config,
            stats: HeapStats::default(),
            pause_buckets: [0; PAUSE_BUCKETS],
            pending_pauses: Vec::new(),
        }
    }

    /// Current statistics.
    pub fn stats(&self) -> HeapStats {
        self.stats
    }

    /// Per-bucket pause counts (log2 ns buckets, see [`PAUSE_BUCKETS`]).
    pub fn pause_buckets(&self) -> &[u64; PAUSE_BUCKETS] {
        &self.pause_buckets
    }

    /// Whether [`Heap::take_pending_pauses`] would return samples.
    pub fn has_pending_pauses(&self) -> bool {
        !self.pending_pauses.is_empty()
    }

    /// Drains the individual pause samples recorded since the last drain
    /// (bounded; overflow samples are dropped from this list but still
    /// counted in [`Heap::stats`] and [`Heap::pause_buckets`]).  Embeddings
    /// forward these to VM-level metrics.
    pub fn take_pending_pauses(&mut self) -> Vec<u64> {
        std::mem::take(&mut self.pending_pauses)
    }

    fn record_pause(&mut self, ns: u64, major: bool) {
        if major {
            self.stats.major_pause_ns += ns;
        } else {
            self.stats.minor_pause_ns += ns;
        }
        self.stats.max_pause_ns = self.stats.max_pause_ns.max(ns);
        self.stats.last_pause_ns = ns;
        self.pause_buckets[pause_bucket(ns)] += 1;
        if self.pending_pauses.len() < MAX_PENDING_PAUSES {
            self.pending_pauses.push(ns);
        }
    }

    /// Words used in the young generation.
    pub fn young_used(&self) -> usize {
        self.young.len()
    }

    /// Words used in the old generation.
    pub fn old_used(&self) -> usize {
        self.old.len()
    }

    // ------------------------------------------------------------------
    // Allocation
    // ------------------------------------------------------------------

    /// Allocates an object whose payload is `payload`.  The payload words
    /// are traced as roots if this allocation triggers a collection, so
    /// references inside them stay valid.
    fn alloc_raw(&mut self, kind: ObjKind, payload: &mut [Word], roots: &mut dyn RootSet) -> Gc {
        let need = payload.len() + 1;
        if self.young.len() + need > self.config.young_words {
            {
                let mut both = ScratchRoots {
                    inner: roots,
                    extra: payload,
                };
                self.collect_minor(&mut both);
            }
            if self.young.len() + need > self.config.young_words {
                // A single object larger than the nursery: grow the nursery
                // (rare; keeps the API total).
                self.config.young_words = (self.young.len() + need) * 2;
            }
        }
        let off = self.young.len();
        self.young.push(header(kind, payload.len(), 0));
        self.young.extend(payload.iter().map(|w| w.0));
        self.stats.words_allocated += need as u64;
        Gc::new(Space::Young, off)
    }

    fn words(&self, space: Space) -> &[u64] {
        match space {
            Space::Young => &self.young,
            Space::Old => &self.old,
        }
    }

    fn words_mut(&mut self, space: Space) -> &mut Vec<u64> {
        match space {
            Space::Young => &mut self.young,
            Space::Old => &mut self.old,
        }
    }

    /// Boxes `v` into a heap word, allocating for floats.
    fn encode_val(&mut self, v: Val, roots: &mut dyn RootSet) -> Word {
        match v {
            Val::Float(f) => self.box_float(f, roots).word(),
            other => other.encode(),
        }
    }

    /// Allocates a boxed float.
    pub fn box_float(&mut self, f: f64, roots: &mut dyn RootSet) -> Gc {
        let mut payload = [Word(f.to_bits())];
        self.alloc_raw(ObjKind::FloatBox, &mut payload, roots)
    }

    /// Replaces every `Val::Float` in `vals` with a boxed float; the whole
    /// slice is rooted across each (possibly collecting) allocation, so
    /// references inside it stay valid and updated.
    fn box_floats(&mut self, vals: &mut [Val], roots: &mut dyn RootSet) {
        for i in 0..vals.len() {
            if let Val::Float(f) = vals[i] {
                let gc = {
                    let mut r = ValScratchRoots { inner: roots, vals };
                    self.box_float(f, &mut r)
                };
                vals[i] = Val::Obj(gc);
            }
        }
    }

    /// Reads a heap word back as a value, unboxing floats.
    fn decode_word(&self, w: Word) -> Val {
        let v = Val::decode(w);
        if let Val::Obj(gc) = v {
            if self.kind(gc) == ObjKind::FloatBox {
                return Val::Float(f64::from_bits(self.payload_word(gc, 0).0));
            }
        }
        v
    }

    /// Allocates a cons cell.
    pub fn cons(&mut self, car: Val, cdr: Val, roots: &mut dyn RootSet) -> Gc {
        let mut vals = [car, cdr];
        self.box_floats(&mut vals, roots);
        let mut payload = [vals[0].encode(), vals[1].encode()];
        self.alloc_raw(ObjKind::Pair, &mut payload, roots)
    }

    /// Allocates a vector filled with `fill`.
    pub fn make_vector(&mut self, len: usize, fill: Val, roots: &mut dyn RootSet) -> Gc {
        let w = self.encode_val(fill, roots);
        let mut payload = vec![w; len];
        self.alloc_raw(ObjKind::Vector, &mut payload, roots)
    }

    /// Allocates a vector from explicit elements.  `items` is rooted (and
    /// updated) across any collection this triggers.
    pub fn make_vector_from(&mut self, items: &mut [Val], roots: &mut dyn RootSet) -> Gc {
        self.box_floats(items, roots);
        let mut payload: Vec<Word> = items.iter().map(|v| v.encode()).collect();
        self.alloc_raw(ObjKind::Vector, &mut payload, roots)
    }

    /// Allocates an environment frame (`[parent, v0, …]`); like a vector
    /// but with [`ObjKind::Frame`].
    pub fn make_frame_from(&mut self, items: &mut [Val], roots: &mut dyn RootSet) -> Gc {
        self.box_floats(items, roots);
        let mut payload: Vec<Word> = items.iter().map(|v| v.encode()).collect();
        self.alloc_raw(ObjKind::Frame, &mut payload, roots)
    }

    /// Allocates a string.
    pub fn make_string(&mut self, s: &str, roots: &mut dyn RootSet) -> Gc {
        let mut words: Vec<Word> = s.chars().map(|c| Val::Char(c).encode()).collect();
        self.alloc_raw(ObjKind::Str, &mut words, roots)
    }

    /// Allocates a closure over `code_id` and captured values.  `captures`
    /// is rooted (and updated) across any collection this triggers.
    pub fn make_closure(
        &mut self,
        code_id: u32,
        captures: &mut [Val],
        roots: &mut dyn RootSet,
    ) -> Gc {
        self.box_floats(captures, roots);
        let mut payload = Vec::with_capacity(captures.len() + 1);
        payload.push(Val::Int(i64::from(code_id)).encode());
        payload.extend(captures.iter().map(|v| v.encode()));
        self.alloc_raw(ObjKind::Closure, &mut payload, roots)
    }

    /// Allocates a mutable cell.
    pub fn make_cell(&mut self, init: Val, roots: &mut dyn RootSet) -> Gc {
        let mut payload = [self.encode_val(init, roots)];
        self.alloc_raw(ObjKind::Cell, &mut payload, roots)
    }

    /// Pins a substrate value and returns its native slot.
    pub fn intern_native(&mut self, v: Value) -> Val {
        let idx = match self.native_free.pop() {
            Some(i) => {
                self.natives[i as usize] = Some(v);
                i
            }
            None => {
                self.natives.push(Some(v));
                (self.natives.len() - 1) as u32
            }
        };
        Val::Native(idx)
    }

    /// Reads a native slot.
    ///
    /// # Panics
    ///
    /// Panics if the slot was pruned (only happens if the mutator kept a
    /// `Val::Native` outside any traced root across a major collection).
    pub fn native(&self, idx: u32) -> &Value {
        self.natives[idx as usize]
            .as_ref()
            .expect("native slot pruned while still referenced")
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The kind of a heap object.
    pub fn kind(&self, gc: Gc) -> ObjKind {
        let h = self.words(gc.space())[gc.offset()];
        debug_assert!(!is_forward(h), "access through stale reference");
        header_kind(h)
    }

    /// Payload length in words.
    pub fn len(&self, gc: Gc) -> usize {
        header_len(self.words(gc.space())[gc.offset()])
    }

    fn payload_word(&self, gc: Gc, i: usize) -> Word {
        debug_assert!(i < self.len(gc), "payload index out of range");
        Word(self.words(gc.space())[gc.offset() + 1 + i])
    }

    fn set_payload_word(&mut self, gc: Gc, i: usize, w: Word) {
        debug_assert!(i < self.len(gc), "payload index out of range");
        let space = gc.space();
        let slot = gc.offset() + 1 + i;
        self.words_mut(space)[slot] = w.0;
        // Write barrier: an old object now possibly references a young one.
        if space == Space::Old && Val::word_is_ref(w) {
            self.remembered.push(slot);
        }
    }

    /// Reads field `i` of an object.
    pub fn field(&self, gc: Gc, i: usize) -> Val {
        self.decode_word(self.payload_word(gc, i))
    }

    /// Writes field `i` of an object (with write barrier).
    pub fn set_field(&mut self, gc: Gc, i: usize, v: Val, roots: &mut dyn RootSet) {
        let mut scratch = [gc.word()];
        let w = {
            let mut both = ScratchRoots {
                inner: roots,
                extra: &mut scratch,
            };
            self.encode_val(v, &mut both)
        };
        let gc = Gc(scratch[0]);
        self.set_payload_word(gc, i, w);
    }

    /// `car` of a pair.
    pub fn car(&self, pair: Gc) -> Val {
        debug_assert_eq!(self.kind(pair), ObjKind::Pair);
        self.field(pair, 0)
    }

    /// `cdr` of a pair.
    pub fn cdr(&self, pair: Gc) -> Val {
        debug_assert_eq!(self.kind(pair), ObjKind::Pair);
        self.field(pair, 1)
    }

    /// `set-car!`.
    pub fn set_car(&mut self, pair: Gc, v: Val, roots: &mut dyn RootSet) {
        self.set_field(pair, 0, v, roots);
    }

    /// `set-cdr!`.
    pub fn set_cdr(&mut self, pair: Gc, v: Val, roots: &mut dyn RootSet) {
        self.set_field(pair, 1, v, roots);
    }

    /// Closure code id.
    pub fn closure_code(&self, clo: Gc) -> u32 {
        debug_assert_eq!(self.kind(clo), ObjKind::Closure);
        match self.field(clo, 0) {
            Val::Int(i) => i as u32,
            v => unreachable!("closure code slot held {v:?}"),
        }
    }

    /// Number of captured values in a closure.
    pub fn closure_captures(&self, clo: Gc) -> usize {
        self.len(clo) - 1
    }

    /// Reads a captured value.
    pub fn closure_capture(&self, clo: Gc, i: usize) -> Val {
        self.field(clo, i + 1)
    }

    /// Extracts a string object.
    pub fn string_value(&self, s: Gc) -> String {
        debug_assert_eq!(self.kind(s), ObjKind::Str);
        (0..self.len(s))
            .map(|i| match self.field(s, i) {
                Val::Char(c) => c,
                v => unreachable!("string slot held {v:?}"),
            })
            .collect()
    }

    // ------------------------------------------------------------------
    // Collection
    // ------------------------------------------------------------------

    /// Forces a minor collection (normally triggered by allocation).
    pub fn collect_minor(&mut self, roots: &mut dyn RootSet) {
        let pause_start = std::time::Instant::now();
        self.stats.minor_collections += 1;
        let mut to: Vec<u64> = Vec::with_capacity(self.config.young_words);
        let old_scan_start = self.old.len();

        // Evacuate roots.
        let mut young = std::mem::take(&mut self.young);
        {
            let mut evac = Evacuator {
                from: &mut young,
                to: &mut to,
                old: &mut self.old,
                stats: &mut self.stats,
                promote_all: false,
            };
            roots.trace(&mut |w| evac.evacuate(w));
            // Entry-table slots are roots (inter-area references).
            for slot in self.entries.iter_mut().flatten() {
                evac.evacuate(slot);
            }
            // Remembered old slots are roots into the young generation.
            let remembered = std::mem::take(&mut self.remembered);
            for slot in remembered {
                let mut w = Word(evac.old[slot]);
                if Val::word_is_ref(w) {
                    evac.evacuate(&mut w);
                    evac.old[slot] = w.0;
                    // Keep slots that still point young.
                    if Gc(w).space() == Space::Young && Val::word_is_ref(w) {
                        self.remembered.push(slot);
                    }
                }
            }
            // Cheney scans: to-space and the old-space extension.
            evac.scan(old_scan_start, &mut self.remembered);
        }
        self.young = to;
        let _ = young;

        // The minor's pause ends here; a triggered major times itself, so
        // its cost is never double-counted under the minor.
        self.record_pause(pause_start.elapsed().as_nanos() as u64, false);

        if self.old.len() > self.config.old_trigger_words {
            self.collect_major(roots);
        }
    }

    /// Forces a major (full) collection: everything live moves to a fresh
    /// old area, the young area empties, and unreferenced native slots are
    /// pruned.
    pub fn collect_major(&mut self, roots: &mut dyn RootSet) {
        let pause_start = std::time::Instant::now();
        self.stats.major_collections += 1;
        let mut young = std::mem::take(&mut self.young);
        let mut from_old = std::mem::take(&mut self.old);
        let mut new_old: Vec<u64> = Vec::with_capacity(from_old.len());
        self.remembered.clear();
        {
            let mut evac = MajorEvacuator {
                young: &mut young,
                from_old: &mut from_old,
                to: &mut new_old,
                stats: &mut self.stats,
            };
            roots.trace(&mut |w| evac.evacuate(w));
            for slot in self.entries.iter_mut().flatten() {
                evac.evacuate(slot);
            }
            evac.scan();
        }
        self.old = new_old;
        self.young = Vec::with_capacity(self.config.young_words);
        self.prune_natives(roots);
        self.record_pause(pause_start.elapsed().as_nanos() as u64, true);
    }

    /// Frees native slots not referenced from any live word.  Spaces are
    /// walked object by object so headers are never misread as values.
    fn prune_natives(&mut self, roots: &mut dyn RootSet) {
        let mut live = vec![false; self.natives.len()];
        let mark = |w: &Word, live: &mut Vec<bool>| {
            if let Val::Native(i) = Val::decode(*w) {
                if let Some(slot) = live.get_mut(i as usize) {
                    *slot = true;
                }
            }
        };
        roots.trace(&mut |w| mark(w, &mut live));
        for slot in self.entries.iter().flatten() {
            mark(slot, &mut live);
        }
        let scan = |words: &[u64], live: &mut Vec<bool>| {
            let mut i = 0;
            while i < words.len() {
                let len = header_len(words[i]);
                for k in 0..len {
                    mark(&Word(words[i + 1 + k]), live);
                }
                i += len + 1;
            }
        };
        scan(&self.old, &mut live);
        scan(&self.young, &mut live);
        self.native_free.clear();
        for (i, is_live) in live.iter().enumerate() {
            if !is_live && self.natives[i].is_some() {
                self.natives[i] = None;
            }
            if self.natives[i].is_none() {
                self.native_free.push(i as u32);
            }
        }
    }

    // ------------------------------------------------------------------
    // Entry table (inter-area references)
    // ------------------------------------------------------------------

    /// Exports `gc` for use from outside the area; the returned id stays
    /// valid across collections.
    pub fn export(&mut self, gc: Gc) -> EntryId {
        match self.entry_free.pop() {
            Some(i) => {
                self.entries[i as usize] = Some(gc.word());
                EntryId(i)
            }
            None => {
                self.entries.push(Some(gc.word()));
                EntryId((self.entries.len() - 1) as u32)
            }
        }
    }

    /// Resolves an exported object to its current location.
    ///
    /// # Panics
    ///
    /// Panics if the entry was released.
    pub fn resolve(&self, id: EntryId) -> Gc {
        Gc(self.entries[id.0 as usize].expect("entry released"))
    }

    /// Releases an exported entry, letting the object die.
    pub fn release(&mut self, id: EntryId) {
        self.entries[id.0 as usize] = None;
        self.entry_free.push(id.0);
    }

    /// Live exported entries.
    pub fn exported(&self) -> usize {
        self.entries.iter().flatten().count()
    }
}

/// Roots = caller roots + a scratch array of words (intermediate values
/// that must survive a collection inside a multi-step allocation).
struct ScratchRoots<'a> {
    inner: &'a mut dyn RootSet,
    extra: &'a mut [Word],
}

impl RootSet for ScratchRoots<'_> {
    fn trace(&mut self, visit: &mut dyn FnMut(&mut Word)) {
        self.inner.trace(visit);
        for w in self.extra.iter_mut() {
            visit(w);
        }
    }
}

/// Roots = caller roots + a scratch slice of mutator values (which may
/// contain references that must survive and be updated).
struct ValScratchRoots<'a> {
    inner: &'a mut dyn RootSet,
    vals: &'a mut [Val],
}

impl RootSet for ValScratchRoots<'_> {
    fn trace(&mut self, visit: &mut dyn FnMut(&mut Word)) {
        self.inner.trace(visit);
        for v in self.vals.iter_mut() {
            if let Val::Obj(gc) = v {
                let mut w = gc.word();
                visit(&mut w);
                *v = Val::Obj(Gc::from_word(w).expect("ref stays ref"));
            }
        }
    }
}

/// Minor-collection evacuator (young → to-space or old).
struct Evacuator<'a> {
    from: &'a mut Vec<u64>,
    to: &'a mut Vec<u64>,
    old: &'a mut Vec<u64>,
    stats: &'a mut HeapStats,
    promote_all: bool,
}

impl Evacuator<'_> {
    fn evacuate(&mut self, w: &mut Word) {
        if !Val::word_is_ref(*w) {
            return;
        }
        let gc = Gc(*w);
        if gc.space() != Space::Young {
            return; // old objects do not move in a minor collection
        }
        let off = gc.offset();
        let h = self.from[off];
        if is_forward(h) {
            *w = forward_target(h);
            return;
        }
        let len = header_len(h);
        let age = header_age(h);
        let promote = self.promote_all || age >= PROMOTE_AGE;
        let new_gc = if promote {
            let new_off = self.old.len();
            self.old.push(header(header_kind(h), len, age));
            self.old
                .extend_from_slice(&self.from[off + 1..off + 1 + len]);
            self.stats.promotions += 1;
            Gc::new(Space::Old, new_off)
        } else {
            let new_off = self.to.len();
            self.to
                .push(header(header_kind(h), len, age.saturating_add(1)));
            self.to
                .extend_from_slice(&self.from[off + 1..off + 1 + len]);
            Gc::new(Space::Young, new_off)
        };
        self.stats.words_copied += (len + 1) as u64;
        self.from[off] = forward_header(new_gc.word());
        *w = new_gc.word();
    }

    /// Cheney scan over to-space and the freshly promoted old-space tail.
    fn scan(&mut self, old_scan_start: usize, remembered: &mut Vec<usize>) {
        let mut to_i = 0;
        let mut old_i = old_scan_start;
        loop {
            let mut progressed = false;
            while to_i < self.to.len() {
                progressed = true;
                let h = self.to[to_i];
                let len = header_len(h);
                for k in 0..len {
                    let mut w = Word(self.to[to_i + 1 + k]);
                    if Val::word_is_ref(w) {
                        self.evacuate(&mut w);
                        self.to[to_i + 1 + k] = w.0;
                    }
                }
                to_i += len + 1;
            }
            while old_i < self.old.len() {
                progressed = true;
                let h = self.old[old_i];
                let len = header_len(h);
                for k in 0..len {
                    let mut w = Word(self.old[old_i + 1 + k]);
                    if Val::word_is_ref(w) {
                        self.evacuate(&mut w);
                        self.old[old_i + 1 + k] = w.0;
                        // A promoted object can still point young.
                        if Val::word_is_ref(Word(self.old[old_i + 1 + k]))
                            && Gc(Word(self.old[old_i + 1 + k])).space() == Space::Young
                        {
                            remembered.push(old_i + 1 + k);
                        }
                    }
                }
                old_i += len + 1;
            }
            if !progressed {
                break;
            }
            if to_i >= self.to.len() && old_i >= self.old.len() {
                break;
            }
        }
    }
}

/// Major-collection evacuator (young + old → fresh old).
struct MajorEvacuator<'a> {
    young: &'a mut Vec<u64>,
    from_old: &'a mut Vec<u64>,
    to: &'a mut Vec<u64>,
    stats: &'a mut HeapStats,
}

impl MajorEvacuator<'_> {
    fn evacuate(&mut self, w: &mut Word) {
        if !Val::word_is_ref(*w) {
            return;
        }
        let gc = Gc(*w);
        let from: &mut Vec<u64> = match gc.space() {
            Space::Young => self.young,
            Space::Old => self.from_old,
        };
        let off = gc.offset();
        let h = from[off];
        if is_forward(h) {
            *w = forward_target(h);
            return;
        }
        let len = header_len(h);
        let new_off = self.to.len();
        self.to.push(header(header_kind(h), len, PROMOTE_AGE));
        for k in 0..len {
            let word = from[off + 1 + k];
            self.to.push(word);
        }
        self.stats.words_copied += (len + 1) as u64;
        from[off] = forward_header(Gc::new(Space::Old, new_off).word());
        *w = Gc::new(Space::Old, new_off).word();
    }

    fn scan(&mut self) {
        let mut i = 0;
        while i < self.to.len() {
            let h = self.to[i];
            let len = header_len(h);
            for k in 0..len {
                let mut w = Word(self.to[i + 1 + k]);
                if Val::word_is_ref(w) {
                    self.evacuate(&mut w);
                    self.to[i + 1 + k] = w.0;
                }
            }
            i += len + 1;
        }
    }
}
