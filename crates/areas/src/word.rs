//! Tagged machine words: the in-heap value representation.
//!
//! Everything stored inside an area is a 64-bit [`Word`] whose low three
//! bits carry the tag:
//!
//! | tag | payload (high 61 bits)       | meaning                        |
//! |-----|------------------------------|--------------------------------|
//! | 0   | signed integer               | fixnum                         |
//! | 1   | word offset                  | reference into the young area  |
//! | 2   | word offset                  | reference into the old area    |
//! | 3   | symbol index                 | interned symbol                |
//! | 4   | slot index                   | native (substrate value) slot  |
//! | 5   | sub-tagged immediate         | bool/char/nil/unit/undef/eof   |
//!
//! Floats do not fit beside a tag, so they are boxed
//! ([`ObjKind::FloatBox`](crate::heap::ObjKind)); the mutator-facing
//! [`Val`] type keeps them unboxed and the heap boxes on store.

/// A tagged 64-bit heap word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Word(pub u64);

const TAG_BITS: u64 = 3;
const TAG_MASK: u64 = 0b111;

pub(crate) const TAG_FIX: u64 = 0;
pub(crate) const TAG_YOUNG: u64 = 1;
pub(crate) const TAG_OLD: u64 = 2;
pub(crate) const TAG_SYM: u64 = 3;
pub(crate) const TAG_NATIVE: u64 = 4;
pub(crate) const TAG_IMM: u64 = 5;

const IMM_FALSE: u64 = 0;
const IMM_TRUE: u64 = 1;
const IMM_NIL: u64 = 2;
const IMM_UNIT: u64 = 3;
const IMM_UNDEF: u64 = 4;
const IMM_EOF: u64 = 5;
const IMM_CHAR: u64 = 6;

/// Which area a reference points into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Space {
    /// The nursery (from-space of the young generation).
    Young,
    /// The tenured area.
    Old,
}

/// An opaque reference to a heap object.  Only valid against the heap that
/// produced it, and only until that heap's next collection **unless** it
/// was re-read from a traced root.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Gc(pub(crate) Word);

impl Gc {
    /// Which area this reference currently points into.
    pub fn space(self) -> Space {
        match self.0 .0 & TAG_MASK {
            TAG_YOUNG => Space::Young,
            TAG_OLD => Space::Old,
            t => unreachable!("non-reference word tag {t} in Gc"),
        }
    }

    pub(crate) fn offset(self) -> usize {
        (self.0 .0 >> TAG_BITS) as usize
    }

    pub(crate) fn new(space: Space, offset: usize) -> Gc {
        let tag = match space {
            Space::Young => TAG_YOUNG,
            Space::Old => TAG_OLD,
        };
        Gc(Word(((offset as u64) << TAG_BITS) | tag))
    }

    /// The raw word (for storing into roots).
    pub fn word(self) -> Word {
        self.0
    }

    /// Reconstructs a reference from a root word; `None` if the word is
    /// not a reference (it was an immediate).
    pub fn from_word(w: Word) -> Option<Gc> {
        if Val::word_is_ref(w) {
            Some(Gc(w))
        } else {
            None
        }
    }
}

/// A mutator-level value: what the computation language reads and writes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Val {
    /// Fixnum (61-bit range; construction panics outside it).
    Int(i64),
    /// Unboxed float (boxed transparently when stored in the heap).
    Float(f64),
    /// Boolean.
    Bool(bool),
    /// Character.
    Char(char),
    /// Interned symbol index (the interner lives above this crate).
    Sym(u32),
    /// The empty list.
    Nil,
    /// The unspecified value.
    Unit,
    /// An undefined (uninitialized) marker.
    Undef,
    /// End-of-file object.
    Eof,
    /// Reference to a heap object.
    Obj(Gc),
    /// Index into the heap's native side table (substrate values).
    Native(u32),
}

/// Range limit of fixnums (61 bits signed).
pub const FIXNUM_MAX: i64 = (1 << 60) - 1;
/// Lower range limit of fixnums.
pub const FIXNUM_MIN: i64 = -(1 << 60);

impl Val {
    /// Whether this value is `#f` (everything else is truthy in Scheme).
    pub fn is_false(self) -> bool {
        matches!(self, Val::Bool(false))
    }

    /// Scheme truthiness.
    pub fn is_truthy(self) -> bool {
        !self.is_false()
    }

    /// Encodes into a heap word.
    ///
    /// # Panics
    ///
    /// Panics on `Val::Float` (floats must be boxed by the heap first) and
    /// on fixnums outside the 61-bit range.
    pub(crate) fn encode(self) -> Word {
        match self {
            Val::Int(i) => {
                assert!(
                    (FIXNUM_MIN..=FIXNUM_MAX).contains(&i),
                    "fixnum out of range: {i}"
                );
                Word(((i as u64) << TAG_BITS) | TAG_FIX)
            }
            Val::Float(_) => panic!("floats must be boxed before storing in the heap"),
            Val::Bool(false) => Word((IMM_FALSE << (TAG_BITS + 3)) | TAG_IMM),
            Val::Bool(true) => Word((IMM_TRUE << (TAG_BITS + 3)) | TAG_IMM),
            Val::Char(c) => Word(((c as u64) << 16) | (IMM_CHAR << (TAG_BITS + 3)) | TAG_IMM),
            Val::Sym(s) => Word(((s as u64) << TAG_BITS) | TAG_SYM),
            Val::Nil => Word((IMM_NIL << (TAG_BITS + 3)) | TAG_IMM),
            Val::Unit => Word((IMM_UNIT << (TAG_BITS + 3)) | TAG_IMM),
            Val::Undef => Word((IMM_UNDEF << (TAG_BITS + 3)) | TAG_IMM),
            Val::Eof => Word((IMM_EOF << (TAG_BITS + 3)) | TAG_IMM),
            Val::Obj(gc) => gc.0,
            Val::Native(i) => Word(((i as u64) << TAG_BITS) | TAG_NATIVE),
        }
    }

    /// Decodes a heap word (never produces `Val::Float`; float boxes decode
    /// as `Val::Obj` and the heap unwraps them).
    pub(crate) fn decode(w: Word) -> Val {
        match w.0 & TAG_MASK {
            TAG_FIX => Val::Int((w.0 as i64) >> TAG_BITS),
            TAG_YOUNG | TAG_OLD => Val::Obj(Gc(w)),
            TAG_SYM => Val::Sym((w.0 >> TAG_BITS) as u32),
            TAG_NATIVE => Val::Native((w.0 >> TAG_BITS) as u32),
            TAG_IMM => {
                let sub = (w.0 >> (TAG_BITS + 3)) & 0b111_1111;
                match sub {
                    IMM_FALSE => Val::Bool(false),
                    IMM_TRUE => Val::Bool(true),
                    IMM_NIL => Val::Nil,
                    IMM_UNIT => Val::Unit,
                    IMM_UNDEF => Val::Undef,
                    IMM_EOF => Val::Eof,
                    _ => {
                        // Characters use a wider layout: sub-tag in bits
                        // 6..13, code point in bits 16+.
                        let code = (w.0 >> 16) as u32;
                        Val::Char(char::from_u32(code).expect("valid char in heap word"))
                    }
                }
            }
            t => unreachable!("invalid word tag {t}"),
        }
    }

    /// Whether a raw word is a heap reference (used by the scavenger).
    pub(crate) fn word_is_ref(w: Word) -> bool {
        matches!(w.0 & TAG_MASK, TAG_YOUNG | TAG_OLD)
    }
}

impl From<i64> for Val {
    fn from(i: i64) -> Val {
        Val::Int(i)
    }
}
impl From<bool> for Val {
    fn from(b: bool) -> Val {
        Val::Bool(b)
    }
}
impl From<f64> for Val {
    fn from(f: f64) -> Val {
        Val::Float(f)
    }
}
impl From<char> for Val {
    fn from(c: char) -> Val {
        Val::Char(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn immediates_round_trip() {
        for v in [
            Val::Int(0),
            Val::Int(42),
            Val::Int(-42),
            Val::Int(FIXNUM_MAX),
            Val::Int(FIXNUM_MIN),
            Val::Bool(true),
            Val::Bool(false),
            Val::Char('a'),
            Val::Char('λ'),
            Val::Char('\0'),
            Val::Sym(0),
            Val::Sym(123_456),
            Val::Nil,
            Val::Unit,
            Val::Undef,
            Val::Eof,
            Val::Native(7),
        ] {
            assert_eq!(Val::decode(v.encode()), v, "{v:?}");
        }
    }

    #[test]
    fn refs_round_trip() {
        for (space, off) in [(Space::Young, 0), (Space::Young, 99), (Space::Old, 12345)] {
            let gc = Gc::new(space, off);
            assert_eq!(gc.space(), space);
            assert_eq!(gc.offset(), off);
            assert_eq!(Val::decode(gc.word()), Val::Obj(gc));
            assert!(Val::word_is_ref(gc.word()));
        }
        assert!(!Val::word_is_ref(Val::Int(5).encode()));
        assert!(!Val::word_is_ref(Val::Nil.encode()));
    }

    #[test]
    #[should_panic(expected = "fixnum out of range")]
    fn oversized_fixnum_panics() {
        let _ = Val::Int(FIXNUM_MAX + 1).encode();
    }

    #[test]
    #[should_panic(expected = "floats must be boxed")]
    fn raw_float_encode_panics() {
        let _ = Val::Float(1.0).encode();
    }

    #[test]
    fn truthiness() {
        assert!(Val::Nil.is_truthy());
        assert!(Val::Int(0).is_truthy());
        assert!(!Val::Bool(false).is_truthy());
        assert!(Val::Bool(false).is_false());
    }
}
