//! Collector correctness: scavenging, promotion, write barriers, entry
//! tables, native pruning, and a property test over random object graphs.

use proptest::prelude::*;
use sting_areas::{Gc, Heap, HeapConfig, ObjKind, Space, Val, Word};
use sting_value::Value;

fn small_heap() -> Heap {
    Heap::new(HeapConfig {
        young_words: 256,
        old_trigger_words: 4096,
    })
}

fn root_gc(roots: &[Word], i: usize) -> Gc {
    Gc::from_word(roots[i]).expect("root is a reference")
}

#[test]
fn simple_alloc_and_access() {
    let mut heap = Heap::default();
    let mut roots: Vec<Word> = Vec::new();
    let p = heap.cons(Val::Int(10), Val::Nil, &mut roots);
    assert_eq!(heap.kind(p), ObjKind::Pair);
    assert_eq!(heap.car(p), Val::Int(10));
    assert_eq!(heap.cdr(p), Val::Nil);
    let v = heap.make_vector(5, Val::Bool(true), &mut roots);
    assert_eq!(heap.len(v), 5);
    assert_eq!(heap.field(v, 4), Val::Bool(true));
    let s = heap.make_string("hello", &mut roots);
    assert_eq!(heap.string_value(s), "hello");
    let c = heap.make_cell(Val::Char('q'), &mut roots);
    assert_eq!(heap.field(c, 0), Val::Char('q'));
}

#[test]
fn floats_are_boxed_transparently() {
    let mut heap = Heap::default();
    let mut roots: Vec<Word> = Vec::new();
    let p = heap.cons(Val::Float(2.5), Val::Float(-0.5), &mut roots);
    assert_eq!(heap.car(p), Val::Float(2.5));
    assert_eq!(heap.cdr(p), Val::Float(-0.5));
}

#[test]
fn survivors_move_and_roots_update() {
    let mut heap = small_heap();
    let mut roots: Vec<Word> = Vec::new();
    let p = heap.cons(Val::Int(1), Val::Int(2), &mut roots);
    roots.push(p.word());
    // Allocate garbage until several collections happen.
    for i in 0..10_000 {
        let _ = heap.cons(Val::Int(i), Val::Nil, &mut roots);
    }
    assert!(heap.stats().minor_collections > 0);
    let p = root_gc(&roots, 0);
    assert_eq!(heap.car(p), Val::Int(1));
    assert_eq!(heap.cdr(p), Val::Int(2));
}

#[test]
fn unrooted_objects_die() {
    let mut heap = small_heap();
    let mut roots: Vec<Word> = Vec::new();
    for i in 0..1000 {
        let _ = heap.cons(Val::Int(i), Val::Nil, &mut roots);
    }
    heap.collect_minor(&mut roots);
    heap.collect_major(&mut roots);
    assert_eq!(heap.young_used(), 0);
    assert_eq!(heap.old_used(), 0, "no survivors without roots");
}

#[test]
fn long_lived_objects_promote() {
    let mut heap = small_heap();
    let mut roots: Vec<Word> = Vec::new();
    let p = heap.cons(Val::Int(7), Val::Nil, &mut roots);
    roots.push(p.word());
    // Enough churn for PROMOTE_AGE scavenges.
    for i in 0..5_000 {
        let _ = heap.cons(Val::Int(i), Val::Nil, &mut roots);
    }
    let p = root_gc(&roots, 0);
    assert_eq!(p.space(), Space::Old, "survivor was promoted");
    assert_eq!(heap.car(p), Val::Int(7));
    assert!(heap.stats().promotions > 0);
}

#[test]
fn write_barrier_keeps_young_objects_alive() {
    let mut heap = small_heap();
    let mut roots: Vec<Word> = Vec::new();
    // Promote a vector.
    let v = heap.make_vector(4, Val::Nil, &mut roots);
    roots.push(v.word());
    for i in 0..5_000 {
        let _ = heap.cons(Val::Int(i), Val::Nil, &mut roots);
    }
    let v = root_gc(&roots, 0);
    assert_eq!(v.space(), Space::Old);
    // Store a fresh young pair into the old vector; the pair is NOT in
    // the explicit root set — only the remembered set keeps it alive.
    let young = heap.cons(Val::Int(42), Val::Int(43), &mut roots);
    {
        let mut scratch = vec![v.word(), young.word()];
        let v2 = Gc::from_word(scratch[0]).unwrap();
        let y2 = Gc::from_word(scratch[1]).unwrap();
        heap.set_field(v2, 0, Val::Obj(y2), &mut scratch);
        roots[0] = scratch[0];
    }
    let v = root_gc(&roots, 0);
    heap.collect_minor(&mut roots);
    let v = {
        let _ = v;
        root_gc(&roots, 0)
    };
    match heap.field(v, 0) {
        Val::Obj(p) => {
            assert_eq!(heap.car(p), Val::Int(42));
            assert_eq!(heap.cdr(p), Val::Int(43));
        }
        other => panic!("barrier lost the young object: {other:?}"),
    }
}

#[test]
fn deep_list_survives_collections() {
    let mut heap = small_heap();
    let mut roots: Vec<Word> = Vec::new();
    // Build (0 1 2 ... 999) keeping only the head rooted.
    let mut head = Val::Nil;
    for i in (0..1000).rev() {
        let gc = match head {
            Val::Obj(gc) => {
                roots.clear();
                roots.push(gc.word());
                heap.cons(Val::Int(i), Val::Obj(root_gc(&roots, 0)), &mut roots)
            }
            _ => heap.cons(Val::Int(i), head, &mut roots),
        };
        head = Val::Obj(gc);
        roots.clear();
        roots.push(gc.word());
    }
    heap.collect_major(&mut roots);
    // Walk the list.
    let mut cur = Val::Obj(root_gc(&roots, 0));
    let mut expect = 0i64;
    while let Val::Obj(gc) = cur {
        assert_eq!(heap.car(gc), Val::Int(expect));
        expect += 1;
        cur = heap.cdr(gc);
    }
    assert_eq!(expect, 1000);
    assert_eq!(cur, Val::Nil);
}

#[test]
fn shared_structure_stays_shared() {
    let mut heap = small_heap();
    let mut roots: Vec<Word> = Vec::new();
    let shared = heap.cons(Val::Int(9), Val::Nil, &mut roots);
    roots.push(shared.word());
    let a = heap.cons(Val::Obj(root_gc(&roots, 0)), Val::Nil, &mut roots);
    roots.push(a.word());
    let b = heap.cons(Val::Obj(root_gc(&roots, 0)), Val::Nil, &mut roots);
    roots.push(b.word());
    heap.collect_major(&mut roots);
    let (a, b) = (root_gc(&roots, 1), root_gc(&roots, 2));
    let (Val::Obj(sa), Val::Obj(sb)) = (heap.car(a), heap.car(b)) else {
        panic!("cars are refs");
    };
    assert_eq!(sa, sb, "sharing preserved, not duplicated");
    // Mutation through one path is visible through the other.
    heap.set_car(sa, Val::Int(100), &mut roots);
    assert_eq!(heap.car(sb), Val::Int(100));
}

#[test]
fn cycles_survive() {
    let mut heap = small_heap();
    let mut roots: Vec<Word> = Vec::new();
    let a = heap.cons(Val::Int(1), Val::Nil, &mut roots);
    roots.push(a.word());
    let b = heap.cons(Val::Int(2), Val::Obj(root_gc(&roots, 0)), &mut roots);
    roots.push(b.word());
    // Close the cycle: a.cdr = b.
    let (a, b) = (root_gc(&roots, 0), root_gc(&roots, 1));
    heap.set_cdr(a, Val::Obj(b), &mut roots);
    heap.collect_major(&mut roots);
    let a = root_gc(&roots, 0);
    let Val::Obj(b2) = heap.cdr(a) else { panic!() };
    let Val::Obj(a2) = heap.cdr(b2) else { panic!() };
    assert_eq!(heap.car(a2), Val::Int(1));
    assert_eq!(heap.car(b2), Val::Int(2));
    assert_eq!(a2, a);
}

#[test]
fn entry_table_survives_moves() {
    let mut heap = small_heap();
    let mut roots: Vec<Word> = Vec::new();
    let obj = heap.cons(Val::Int(55), Val::Nil, &mut roots);
    let id = heap.export(obj);
    // No explicit root: only the entry table keeps it alive.
    for i in 0..5_000 {
        let _ = heap.cons(Val::Int(i), Val::Nil, &mut roots);
    }
    heap.collect_major(&mut roots);
    let obj = heap.resolve(id);
    assert_eq!(heap.car(obj), Val::Int(55));
    assert_eq!(heap.exported(), 1);
    heap.release(id);
    assert_eq!(heap.exported(), 0);
    heap.collect_major(&mut roots);
    assert_eq!(heap.old_used(), 0, "released entry lets the object die");
}

#[test]
fn natives_pin_and_prune() {
    let mut heap = small_heap();
    let mut roots: Vec<Word> = Vec::new();
    let nv = heap.intern_native(Value::from("pinned"));
    let Val::Native(idx) = nv else { panic!() };
    // Reachable through a rooted pair.
    let p = heap.cons(nv, Val::Nil, &mut roots);
    roots.push(p.word());
    heap.collect_major(&mut roots);
    assert_eq!(heap.native(idx).as_str(), Some("pinned"));
    // Drop the pair; major collection prunes the native slot.
    roots.clear();
    let unreferenced = heap.intern_native(Value::from("garbage"));
    let Val::Native(gidx) = unreferenced else {
        panic!()
    };
    heap.collect_major(&mut roots);
    let _ = gidx;
    // Slot is recycled for the next intern.
    let again = heap.intern_native(Value::from("fresh"));
    let Val::Native(fidx) = again else { panic!() };
    assert_eq!(heap.native(fidx).as_str(), Some("fresh"));
}

#[test]
fn stats_accumulate() {
    let mut heap = small_heap();
    let mut roots: Vec<Word> = Vec::new();
    for i in 0..2_000 {
        let _ = heap.cons(Val::Int(i), Val::Nil, &mut roots);
    }
    let s = heap.stats();
    assert!(s.words_allocated >= 6_000);
    assert!(s.minor_collections >= 1);
}

proptest! {
    /// Random graphs of pairs/vectors survive a random collection schedule
    /// with contents intact.
    #[test]
    fn random_graphs_survive(ops in prop::collection::vec(0u8..6, 1..120), seed in 0i64..1000) {
        let mut heap = small_heap();
        let mut roots: Vec<Word> = Vec::new();
        let mut expect: Vec<(usize, i64)> = Vec::new(); // (root index, car int)
        let mut counter = seed;
        for op in ops {
            match op {
                // New rooted pair.
                0..=2 => {
                    counter += 1;
                    let gc = heap.cons(Val::Int(counter), Val::Nil, &mut roots);
                    expect.push((roots.len(), counter));
                    roots.push(gc.word());
                }
                // Garbage.
                3 => {
                    for i in 0..200 {
                        let _ = heap.cons(Val::Int(i), Val::Int(i), &mut roots);
                    }
                }
                // Minor collection.
                4 => heap.collect_minor(&mut roots),
                // Major collection.
                _ => heap.collect_major(&mut roots),
            }
        }
        heap.collect_major(&mut roots);
        for (idx, want) in expect {
            let gc = root_gc(&roots, idx);
            prop_assert_eq!(heap.car(gc), Val::Int(want));
            prop_assert_eq!(heap.cdr(gc), Val::Nil);
        }
    }
}

#[test]
fn strings_and_vectors_survive_collections() {
    let mut heap = small_heap();
    let mut roots: Vec<Word> = Vec::new();
    let s = heap.make_string("hello world", &mut roots);
    roots.push(s.word());
    let v = heap.make_vector(3, Val::Char('x'), &mut roots);
    roots.push(v.word());
    for i in 0..5_000 {
        let _ = heap.cons(Val::Int(i), Val::Nil, &mut roots);
    }
    heap.collect_major(&mut roots);
    let s = root_gc(&roots, 0);
    let v = root_gc(&roots, 1);
    assert_eq!(heap.string_value(s), "hello world");
    assert_eq!(heap.len(v), 3);
    assert_eq!(heap.field(v, 2), Val::Char('x'));
}

#[test]
fn vector_of_floats_boxes_correctly_under_pressure() {
    let mut heap = small_heap();
    let mut roots: Vec<Word> = Vec::new();
    // Mixed vector with floats interleaved with refs: exercises the
    // box_floats rooting path.
    let pair = heap.cons(Val::Int(1), Val::Nil, &mut roots);
    roots.push(pair.word());
    let mut items = vec![
        Val::Float(1.5),
        Val::Obj(root_gc(&roots, 0)),
        Val::Float(2.5),
        Val::Int(7),
    ];
    let v = heap.make_vector_from(&mut items, &mut roots);
    roots.push(v.word());
    for i in 0..3_000 {
        let _ = heap.cons(Val::Int(i), Val::Nil, &mut roots);
    }
    let v = root_gc(&roots, 1);
    assert_eq!(heap.field(v, 0), Val::Float(1.5));
    assert_eq!(heap.field(v, 2), Val::Float(2.5));
    assert_eq!(heap.field(v, 3), Val::Int(7));
    match heap.field(v, 1) {
        Val::Obj(p) => assert_eq!(heap.car(p), Val::Int(1)),
        other => panic!("lost the ref: {other:?}"),
    }
}

#[test]
fn closures_survive_and_keep_captures() {
    let mut heap = small_heap();
    let mut roots: Vec<Word> = Vec::new();
    let env = heap.cons(Val::Int(40), Val::Int(2), &mut roots);
    roots.push(env.word());
    let mut captures = [Val::Obj(env)];
    let clo = heap.make_closure(17, &mut captures, &mut roots);
    roots.push(clo.word());
    for i in 0..5_000 {
        let _ = heap.cons(Val::Int(i), Val::Nil, &mut roots);
    }
    heap.collect_major(&mut roots);
    let clo = root_gc(&roots, 1);
    assert_eq!(heap.kind(clo), ObjKind::Closure);
    assert_eq!(heap.closure_code(clo), 17);
    assert_eq!(heap.closure_captures(clo), 1);
    match heap.closure_capture(clo, 0) {
        Val::Obj(env) => {
            assert_eq!(heap.car(env), Val::Int(40));
            assert_eq!(heap.cdr(env), Val::Int(2));
        }
        other => panic!("capture lost: {other:?}"),
    }
}

#[test]
fn frames_are_a_distinct_kind() {
    let mut heap = small_heap();
    let mut roots: Vec<Word> = Vec::new();
    let mut slots = [Val::Nil, Val::Int(1), Val::Int(2)];
    let f = heap.make_frame_from(&mut slots, &mut roots);
    assert_eq!(heap.kind(f), ObjKind::Frame);
    assert_eq!(heap.len(f), 3);
    roots.push(f.word());
    heap.collect_major(&mut roots);
    let f = root_gc(&roots, 0);
    assert_eq!(heap.kind(f), ObjKind::Frame);
    assert_eq!(heap.field(f, 1), Val::Int(1));
}
