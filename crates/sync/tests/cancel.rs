//! Terminate-while-blocked and lost-wake-up regressions for every
//! blocking structure in the crate.
//!
//! The protocol promise under test (DESIGN.md, "Blocking protocol"): an
//! asynchronous terminate of a blocked thread cancels its wait episode,
//! so the structure's live-waiter count drops to zero, peers blocked on
//! the same structure are unaffected, and a subsequent wake-up is never
//! delivered to the dead registration.  Every test runs with tracing on
//! and asserts a clean audit (no `WakeAfterCancel`, no `WaiterLeak`);
//! debug builds re-check at `shutdown`.

use std::sync::Arc;
use std::time::{Duration, Instant};
use sting_core::tc;
use sting_core::vm::Vm;
use sting_core::VmBuilder;
use sting_sync::{block_on_group, Barrier, Channel, IVar, Mutex, Semaphore, Stream};
use sting_value::Value;

fn vm() -> Arc<Vm> {
    VmBuilder::new()
        .vps(1)
        .trace(true)
        .trace_capacity(1 << 14)
        .build()
}

fn wait_until(what: &str, cond: impl Fn() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(5);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(1));
    }
}

fn finish(vm: &Arc<Vm>) {
    let report = vm.trace_audit();
    assert!(report.is_clean(), "audit found violations:\n{report}");
    vm.shutdown();
}

#[test]
fn terminate_blocked_mutex_acquirer() {
    let vm = vm();
    let m = Mutex::new(0, 0);
    let held = m.acquire();
    let fork_blocked = |m: &Mutex| {
        let m = m.clone();
        vm.fork(move |_cx| {
            let _g = m.acquire();
            1i64
        })
    };
    let victim = fork_blocked(&m);
    let peer = fork_blocked(&m);
    wait_until("both acquirers to block", || m.blocked() == 2);
    tc::thread_terminate(&victim, Value::sym("killed")).unwrap();
    wait_until("victim deregistration", || m.blocked() == 1);
    assert_eq!(victim.join_blocking(), Ok(Value::sym("killed")));
    drop(held);
    assert_eq!(peer.join_blocking(), Ok(Value::Int(1)), "peer unaffected");
    assert_eq!(m.blocked(), 0);
    finish(&vm);
}

#[test]
fn terminate_blocked_semaphore_acquirer_and_wake_one_skips_it() {
    let vm = vm();
    let sem = Semaphore::new(0);
    let fork_blocked = |sem: &Semaphore| {
        let sem = sem.clone();
        vm.fork(move |_cx| {
            sem.acquire();
            1i64
        })
    };
    let victim = fork_blocked(&sem);
    let peer = fork_blocked(&sem);
    wait_until("both acquirers to block", || sem.blocked() == 2);
    tc::thread_terminate(&victim, Value::sym("killed")).unwrap();
    wait_until("victim deregistration", || sem.blocked() == 1);
    assert_eq!(victim.join_blocking(), Ok(Value::sym("killed")));
    // Lost-wake-up regression: this single release's `wake_one` must skip
    // the victim's dead registration (its claim CAS fails) and reach the
    // peer — pre-protocol, the wake could be absorbed by the corpse.
    sem.release();
    assert_eq!(peer.join_blocking(), Ok(Value::Int(1)), "wake-up lost");
    assert_eq!(sem.blocked(), 0);
    assert_eq!(sem.permits(), 0, "permit double-spent");
    finish(&vm);
}

#[test]
fn terminate_blocked_channel_receiver_and_sender() {
    let vm = vm();
    let ch = Channel::bounded(1);
    let victim_rx = {
        let ch = ch.clone();
        vm.fork(move |_cx| ch.recv().map(|_| 1i64).unwrap_or(0))
    };
    let peer_rx = {
        let ch = ch.clone();
        vm.fork(move |_cx| ch.recv().map(|_| 1i64).unwrap_or(0))
    };
    wait_until("receivers to block", || ch.blocked_receivers() == 2);
    tc::thread_terminate(&victim_rx, Value::sym("killed")).unwrap();
    wait_until("receiver deregistration", || ch.blocked_receivers() == 1);
    ch.send(Value::Int(7)).unwrap();
    assert_eq!(peer_rx.join_blocking(), Ok(Value::Int(1)), "peer starved");
    assert_eq!(victim_rx.join_blocking(), Ok(Value::sym("killed")));

    // Sender side: fill the channel, block two senders, kill one.
    ch.send(Value::Int(0)).unwrap();
    let fork_sender = |ch: &Channel| {
        let ch = ch.clone();
        vm.fork(move |_cx| {
            ch.send(Value::Int(9)).unwrap();
            1i64
        })
    };
    let victim_tx = fork_sender(&ch);
    let peer_tx = fork_sender(&ch);
    wait_until("senders to block", || ch.blocked_senders() == 2);
    tc::thread_terminate(&victim_tx, Value::sym("killed")).unwrap();
    wait_until("sender deregistration", || ch.blocked_senders() == 1);
    assert_eq!(victim_tx.join_blocking(), Ok(Value::sym("killed")));
    assert_eq!(ch.recv(), Some(Value::Int(0)));
    assert_eq!(peer_tx.join_blocking(), Ok(Value::Int(1)), "peer starved");
    assert_eq!(ch.blocked_senders(), 0);
    finish(&vm);
}

#[test]
fn terminate_blocked_stream_reader() {
    let vm = vm();
    let s = Stream::new();
    let fork_reader = |s: &Stream| {
        let s = s.clone();
        vm.fork(move |_cx| s.cursor().hd().unwrap())
    };
    let victim = fork_reader(&s);
    let peer = fork_reader(&s);
    wait_until("readers to block", || s.blocked() == 2);
    tc::thread_terminate(&victim, Value::sym("killed")).unwrap();
    wait_until("reader deregistration", || s.blocked() == 1);
    s.attach(Value::Int(5));
    assert_eq!(peer.join_blocking(), Ok(Value::Int(5)), "peer unaffected");
    assert_eq!(victim.join_blocking(), Ok(Value::sym("killed")));
    assert_eq!(s.blocked(), 0);
    finish(&vm);
}

#[test]
fn terminate_blocked_ivar_reader() {
    let vm = vm();
    let iv = IVar::new();
    let fork_reader = |iv: &IVar| {
        let iv = iv.clone();
        vm.fork(move |_cx| iv.get())
    };
    let victim = fork_reader(&iv);
    let peer = fork_reader(&iv);
    wait_until("readers to block", || iv.blocked() == 2);
    tc::thread_terminate(&victim, Value::sym("killed")).unwrap();
    wait_until("reader deregistration", || iv.blocked() == 1);
    iv.put(Value::Int(3)).unwrap();
    assert_eq!(peer.join_blocking(), Ok(Value::Int(3)), "peer unaffected");
    assert_eq!(victim.join_blocking(), Ok(Value::sym("killed")));
    finish(&vm);
}

#[test]
fn terminate_blocked_barrier_party_withdraws_its_arrival() {
    let vm = vm();
    let b = Barrier::new(3);
    let fork_party = |b: &Barrier| {
        let b = b.clone();
        vm.fork(move |_cx| {
            b.arrive();
            1i64
        })
    };
    let victim = fork_party(&b);
    let peer = fork_party(&b);
    wait_until("parties to block", || b.blocked() == 2);
    assert_eq!(b.arrived(), 2);
    tc::thread_terminate(&victim, Value::sym("killed")).unwrap();
    wait_until("party deregistration", || b.blocked() == 1);
    assert_eq!(victim.join_blocking(), Ok(Value::sym("killed")));
    // The dead party's arrival was withdrawn on unwind, leaving only the
    // peer's.  A timed-out arrival is withdrawn the same way ...
    wait_until("arrival withdrawal", || b.arrived() == 1);
    assert!(b.arrive_timeout(Duration::from_millis(10)).is_err());
    wait_until("timeout withdrawal", || b.arrived() == 1);
    // ... so the cycle needs two more *live* arrivals to fire.
    let helper = fork_party(&b);
    b.arrive();
    assert_eq!(peer.join_blocking(), Ok(Value::Int(1)), "peer unaffected");
    assert_eq!(helper.join_blocking(), Ok(Value::Int(1)));
    assert_eq!(b.blocked(), 0);
    finish(&vm);
}

#[test]
fn terminate_blocked_joiner() {
    let vm = vm();
    let slow = vm.fork(|cx| {
        cx.sleep(Duration::from_millis(80));
        7i64
    });
    let victim = {
        let slow = slow.clone();
        vm.fork(move |cx| cx.wait(&slow).map(|_| 1i64).unwrap_or(0))
    };
    let peer = {
        let slow = slow.clone();
        vm.fork(move |cx| cx.wait(&slow).map(|v| v.as_int().unwrap()).unwrap_or(0))
    };
    std::thread::sleep(Duration::from_millis(20));
    tc::thread_terminate(&victim, Value::sym("killed")).unwrap();
    assert_eq!(victim.join_blocking(), Ok(Value::sym("killed")));
    assert_eq!(peer.join_blocking(), Ok(Value::Int(7)), "peer unaffected");
    finish(&vm);
}

#[test]
fn terminate_thread_blocked_on_group() {
    let vm = vm();
    let slow: Vec<_> = (0..2)
        .map(|i| {
            vm.fork(move |cx| {
                cx.sleep(Duration::from_millis(60));
                i as i64
            })
        })
        .collect();
    let victim = {
        let slow = slow.clone();
        vm.fork(move |_cx| {
            block_on_group(2, &slow);
            1i64
        })
    };
    let peer = {
        let slow = slow.clone();
        vm.fork(move |_cx| {
            block_on_group(2, &slow);
            1i64
        })
    };
    std::thread::sleep(Duration::from_millis(15));
    tc::thread_terminate(&victim, Value::sym("killed")).unwrap();
    assert_eq!(victim.join_blocking(), Ok(Value::sym("killed")));
    assert_eq!(peer.join_blocking(), Ok(Value::Int(1)), "peer unaffected");
    finish(&vm);
}

/// Lost-wake-up regression for the mutex: `release` wakes everyone, but a
/// waiter that just timed out must not absorb (and so discard) a wake-up
/// another acquirer needed.
#[test]
fn mutex_timeout_racing_release_strands_no_one() {
    let vm = VmBuilder::new()
        .vps(2)
        .processors(2)
        .trace(true)
        .trace_capacity(1 << 16)
        .build();
    let m = Mutex::new(0, 0);
    let mut all = Vec::new();
    for i in 0..6usize {
        let m = m.clone();
        all.push(vm.fork(move |cx| {
            let mut acquired = 0i64;
            for _ in 0..40 {
                // Half the threads use timeouts short enough to lose races.
                let dur = Duration::from_micros(if i % 2 == 0 { 50 } else { 5000 });
                if let Ok(g) = m.acquire_timeout(dur) {
                    acquired += 1;
                    cx.yield_now();
                    drop(g);
                }
                cx.checkpoint();
            }
            acquired
        }));
    }
    let total: i64 = all
        .into_iter()
        .map(|t| t.join_blocking().unwrap().as_int().unwrap())
        .sum();
    assert!(total > 0, "no acquisition ever succeeded");
    assert!(!m.is_locked(), "mutex leaked a hold");
    finish(&vm);
}

/// Lost-wake-up regression for the semaphore: permits released while
/// waiters time out and retry must all be either consumed or left on the
/// counter — the claim token's re-donation path may not drop any.
#[test]
fn semaphore_timeouts_racing_releases_conserve_permits() {
    let vm = VmBuilder::new()
        .vps(2)
        .processors(2)
        .trace(true)
        .trace_capacity(1 << 16)
        .build();
    let sem = Semaphore::new(0);
    const RELEASES: usize = 120;
    let producer = {
        let sem = sem.clone();
        vm.fork(move |cx| {
            for _ in 0..RELEASES {
                sem.release();
                cx.checkpoint();
            }
            0i64
        })
    };
    let consumers: Vec<_> = (0..4)
        .map(|i| {
            let sem = sem.clone();
            vm.fork(move |cx| {
                let mut got = 0i64;
                for _ in 0..60 {
                    let dur = Duration::from_micros(if i % 2 == 0 { 20 } else { 2000 });
                    if sem.acquire_timeout(dur).is_ok() {
                        got += 1;
                    }
                    cx.checkpoint();
                }
                got
            })
        })
        .collect();
    producer.join_blocking().unwrap();
    let consumed: i64 = consumers
        .into_iter()
        .map(|t| t.join_blocking().unwrap().as_int().unwrap())
        .sum();
    assert_eq!(
        consumed + sem.permits() as i64,
        RELEASES as i64,
        "permits lost or double-spent across timeout races"
    );
    assert_eq!(sem.blocked(), 0);
    finish(&vm);
}
