//! Randomized stress tests for the synchronization structures: many
//! threads, mixed primitives, values conserved end to end.

use proptest::prelude::*;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;
use sting_core::VmBuilder;
use sting_sync::{wait_for_all, Barrier, Channel, IVar, Mutex, Semaphore, Stream};
use sting_value::Value;

#[test]
fn pipeline_stream_channel_ivar() {
    // stream -> channel -> ivar pipeline with independent threads.
    let vm = VmBuilder::new().vps(2).build();
    let stream = Stream::new();
    let ch = Channel::bounded(8);
    let done = IVar::new();

    let (s2, c2) = (stream.clone(), ch.clone());
    vm.fork(move |_| {
        let mut cur = s2.cursor();
        while let Some(v) = cur.next() {
            c2.send(v).unwrap();
        }
        c2.close();
        0i64
    });
    let (c3, d2) = (ch.clone(), done.clone());
    vm.fork(move |_| {
        let mut sum = 0i64;
        while let Some(v) = c3.recv() {
            sum += v.as_int().unwrap();
        }
        d2.put(Value::Int(sum)).unwrap();
        0i64
    });
    for i in 1..=100i64 {
        stream.attach(Value::Int(i));
    }
    stream.close();
    assert_eq!(done.get().as_int(), Some(5050));
    vm.shutdown();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn mutex_guarded_counter_is_exact(
        workers in 1usize..6,
        rounds in 1usize..40,
        active in 0u32..64,
    ) {
        let vm = VmBuilder::new().vps(2).build();
        let m = Mutex::new(active, 2);
        let counter = Arc::new(AtomicI64::new(0));
        let ts: Vec<_> = (0..workers)
            .map(|_| {
                let m = m.clone();
                let c = counter.clone();
                vm.fork(move |cx| {
                    for _ in 0..rounds {
                        m.with(|| {
                            let v = c.load(Ordering::SeqCst);
                            cx.checkpoint();
                            c.store(v + 1, Ordering::SeqCst);
                        });
                    }
                    0i64
                })
            })
            .collect();
        wait_for_all(&ts);
        prop_assert_eq!(counter.load(Ordering::SeqCst) as usize, workers * rounds);
        vm.shutdown();
    }

    #[test]
    fn semaphore_never_oversubscribes(
        permits in 1usize..4,
        workers in 1usize..8,
    ) {
        let vm = VmBuilder::new().vps(2).build();
        let sem = Semaphore::new(permits);
        let inside = Arc::new(AtomicI64::new(0));
        let peak = Arc::new(AtomicI64::new(0));
        let ts: Vec<_> = (0..workers)
            .map(|_| {
                let sem = sem.clone();
                let inside = inside.clone();
                let peak = peak.clone();
                vm.fork(move |cx| {
                    for _ in 0..20 {
                        sem.with(|| {
                            let now = inside.fetch_add(1, Ordering::SeqCst) + 1;
                            peak.fetch_max(now, Ordering::SeqCst);
                            cx.yield_now();
                            inside.fetch_sub(1, Ordering::SeqCst);
                        });
                    }
                    0i64
                })
            })
            .collect();
        wait_for_all(&ts);
        prop_assert!(peak.load(Ordering::SeqCst) as usize <= permits);
        prop_assert_eq!(sem.permits(), permits);
        vm.shutdown();
    }

    #[test]
    fn channel_conserves_messages(
        producers in 1usize..4,
        per in 1usize..40,
        bound in prop::option::of(1usize..6),
    ) {
        let vm = VmBuilder::new().vps(2).build();
        let ch = match bound {
            Some(b) => Channel::bounded(b),
            None => Channel::unbounded(),
        };
        let ps: Vec<_> = (0..producers)
            .map(|p| {
                let ch = ch.clone();
                vm.fork(move |_| {
                    for i in 0..per {
                        ch.send(Value::Int((p * 1000 + i) as i64)).unwrap();
                    }
                    0i64
                })
            })
            .collect();
        let ch2 = ch.clone();
        let total = producers * per;
        let consumer = vm.fork(move |_| {
            let mut got = 0i64;
            for _ in 0..total {
                ch2.recv().unwrap();
                got += 1;
            }
            got
        });
        wait_for_all(&ps);
        prop_assert_eq!(consumer.join_blocking().unwrap().as_int(), Some(total as i64));
        prop_assert!(ch.is_empty());
        vm.shutdown();
    }

    #[test]
    fn barrier_generations_count_rounds(parties in 2usize..5, rounds in 1u64..20) {
        let vm = VmBuilder::new().vps(2).build();
        let b = Barrier::new(parties);
        let ts: Vec<_> = (0..parties)
            .map(|_| {
                let b = b.clone();
                vm.fork(move |_| {
                    for _ in 0..rounds {
                        b.arrive();
                    }
                    0i64
                })
            })
            .collect();
        wait_for_all(&ts);
        prop_assert_eq!(b.generation(), rounds);
        vm.shutdown();
    }
}
