//! A reusable rendezvous barrier for phased master/slave computations
//! (§4.2.2's barrier-synchronization discussion).

use crate::wait::{block_until_deadline, TimedOut, WaitList, Waiter};
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::{Duration, Instant};
use sting_value::Value;

struct Inner {
    parties: usize,
    arrived: usize,
    generation: u64,
    waiters: WaitList,
}

/// A cyclic barrier: each [`Barrier::arrive`] blocks until `parties`
/// threads have arrived, then all proceed and the barrier resets.
#[derive(Clone)]
pub struct Barrier {
    inner: Arc<Mutex<Inner>>,
}

impl std::fmt::Debug for Barrier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let g = self.inner.lock();
        write!(f, "Barrier({}/{} arrived)", g.arrived, g.parties)
    }
}

impl Barrier {
    /// Creates a barrier for `parties` threads (minimum 1).
    pub fn new(parties: usize) -> Barrier {
        Barrier {
            inner: Arc::new(Mutex::new(Inner {
                parties: parties.max(1),
                arrived: 0,
                generation: 0,
                waiters: WaitList::new(),
            })),
        }
    }

    /// Arrives at the barrier; blocks until all parties arrive.  Returns
    /// `true` for exactly one arrival per cycle (the "leader").
    pub fn arrive(&self) -> bool {
        self.arrive_deadline(None)
            .expect("arrive without a deadline cannot time out")
    }

    /// [`Barrier::arrive`] with a timeout.  On timeout the arrival is
    /// withdrawn, so the cycle is not left waiting on a departed party —
    /// unless the cycle completed while the waiter was abandoning, which
    /// counts as a (non-leader) success.
    ///
    /// # Errors
    ///
    /// [`TimedOut`] if the cycle did not complete within `timeout`.
    pub fn arrive_timeout(&self, timeout: Duration) -> Result<bool, TimedOut> {
        self.arrive_deadline(Some(Instant::now() + timeout))
            .ok_or(TimedOut)
    }

    fn arrive_deadline(&self, deadline: Option<Instant>) -> Option<bool> {
        let gen = {
            let mut g = self.inner.lock();
            g.arrived += 1;
            if g.arrived == g.parties {
                g.arrived = 0;
                g.generation += 1;
                g.waiters.wake_all();
                return Some(true);
            }
            g.generation
        };
        // Withdraw the arrival if this party departs without completing
        // the cycle — by timeout below, or by unwinding (termination or a
        // raised exception while blocked).
        struct Arrival<'a> {
            barrier: &'a Barrier,
            gen: u64,
            armed: bool,
        }
        impl Drop for Arrival<'_> {
            fn drop(&mut self) {
                if self.armed {
                    let mut g = self.barrier.inner.lock();
                    if g.generation == self.gen {
                        g.arrived -= 1;
                    }
                }
            }
        }
        let mut arrival = Arrival {
            barrier: self,
            gen,
            armed: true,
        };
        let done = block_until_deadline(&Value::sym("barrier"), deadline, |w: &Waiter| {
            let mut g = self.inner.lock();
            if g.generation != gen {
                Some(())
            } else {
                g.waiters.push(w.clone());
                None
            }
        });
        arrival.armed = false;
        match done {
            Some(()) => Some(false),
            None => {
                let mut g = self.inner.lock();
                if g.generation != gen {
                    // The cycle fired while we were abandoning.
                    Some(false)
                } else {
                    g.arrived -= 1;
                    None
                }
            }
        }
    }

    /// Parties arrived in the current (incomplete) cycle.
    pub fn arrived(&self) -> usize {
        self.inner.lock().arrived
    }

    /// Number of (live) threads blocked in [`Barrier::arrive`].
    pub fn blocked(&self) -> usize {
        self.inner.lock().waiters.len()
    }

    /// Number of parties the barrier waits for.
    pub fn parties(&self) -> usize {
        self.inner.lock().parties
    }

    /// Completed cycles.
    pub fn generation(&self) -> u64 {
        self.inner.lock().generation
    }

    /// Wraps the barrier as a substrate value.
    pub fn to_value(&self) -> Value {
        Value::native("barrier", Arc::new(self.clone()))
    }

    /// Recovers a barrier from a value.
    pub fn from_value(v: &Value) -> Option<Barrier> {
        v.native_as::<Barrier>().map(|b| (*b).clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use sting_core::VmBuilder;

    #[test]
    fn phases_stay_aligned() {
        let vm = VmBuilder::new().vps(1).build();
        let barrier = Barrier::new(4);
        let phase_counts: Arc<Vec<AtomicUsize>> =
            Arc::new((0..3).map(|_| AtomicUsize::new(0)).collect());
        let mut ts = Vec::new();
        for _ in 0..4 {
            let b = barrier.clone();
            let pc = phase_counts.clone();
            ts.push(vm.fork(move |_cx| {
                for phase in 0..3 {
                    pc[phase].fetch_add(1, Ordering::SeqCst);
                    b.arrive();
                    // After the barrier, everyone finished this phase.
                    assert_eq!(pc[phase].load(Ordering::SeqCst), 4);
                }
                0i64
            }));
        }
        for t in ts {
            t.join_blocking().unwrap();
        }
        assert_eq!(barrier.generation(), 3);
        vm.shutdown();
    }

    #[test]
    fn exactly_one_leader_per_cycle() {
        let vm = VmBuilder::new().vps(1).build();
        let barrier = Barrier::new(3);
        let leaders = Arc::new(AtomicUsize::new(0));
        let ts: Vec<_> = (0..3)
            .map(|_| {
                let b = barrier.clone();
                let l = leaders.clone();
                vm.fork(move |_cx| {
                    if b.arrive() {
                        l.fetch_add(1, Ordering::SeqCst);
                    }
                    0i64
                })
            })
            .collect();
        for t in ts {
            t.join_blocking().unwrap();
        }
        assert_eq!(leaders.load(Ordering::SeqCst), 1);
        vm.shutdown();
    }

    #[test]
    fn single_party_barrier_never_blocks() {
        let b = Barrier::new(1);
        assert!(b.arrive());
        assert!(b.arrive());
        assert_eq!(b.generation(), 2);
    }
}
