//! Mutexes with active/passive spinning (§4.2.1).
//!
//! `(make-mutex active passive)`: on contention the acquirer first spins
//! *actively* (retaining its VP) `active` times, then spins *passively*
//! (yielding the VP and retrying when rescheduled) `passive` times, and
//! finally blocks on the mutex.  `release` wakes **all** blocked threads
//! ("all threads blocked on this mutex are restored onto some ready
//! queue"), which then re-contend.
//!
//! [`Mutex::with`] is the paper's `with-mutex`: the lock is released even
//! if the body raises, via an RAII [`MutexGuard`].

use crate::wait::{block_until_deadline, TimedOut, WaitList, Waiter};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use sting_core::tc;
use sting_core::trace::EventKind;
use sting_value::Value;

/// Process-wide mutex id source; ids appear as the payload of
/// `lock-acquire` / `lock-release` trace events.  Starts at 1 so id 0
/// never appears (trace payloads use 0 for "not applicable").
static NEXT_ID: AtomicU32 = AtomicU32::new(1);

struct Inner {
    id: u32,
    locked: AtomicBool,
    waiters: parking_lot::Mutex<WaitList>,
}

/// A STING mutex (no protected data — pair it with the structures it
/// guards, as Scheme code does).  Cheap to clone; clones share the lock.
#[derive(Clone)]
pub struct Mutex {
    inner: Arc<Inner>,
    active_spins: u32,
    passive_spins: u32,
}

impl std::fmt::Debug for Mutex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mutex")
            .field("locked", &self.inner.locked.load(Ordering::Relaxed))
            .field("active_spins", &self.active_spins)
            .field("passive_spins", &self.passive_spins)
            .finish()
    }
}

impl Default for Mutex {
    fn default() -> Mutex {
        Mutex::new(64, 4)
    }
}

impl Mutex {
    /// `(make-mutex active passive)`.
    pub fn new(active_spins: u32, passive_spins: u32) -> Mutex {
        Mutex {
            inner: Arc::new(Inner {
                id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
                locked: AtomicBool::new(false),
                waiters: parking_lot::Mutex::new(WaitList::new()),
            }),
            active_spins,
            passive_spins,
        }
    }

    /// The mutex's process-unique id, as recorded in `lock-acquire` /
    /// `lock-release` trace events.
    pub fn id(&self) -> u32 {
        self.inner.id
    }

    /// Records a lock event on the flight recorder when the caller is a
    /// STING thread and tracing is on.
    fn trace(&self, kind: EventKind) {
        if let Some(cx) = tc::Cx::current() {
            let vp = cx.current_vp().index();
            let vm = cx.vm();
            sting_core::trace_event!(
                vm.tracer(),
                Some(vp),
                kind,
                cx.current_thread().id().0,
                self.inner.id
            );
        }
    }

    /// Builds the guard for a just-won lock, recording the acquisition.
    fn won(&self) -> MutexGuard {
        self.trace(EventKind::LockAcquire);
        MutexGuard {
            mutex: self.clone(),
        }
    }

    fn try_lock_raw(&self) -> bool {
        !self.inner.locked.swap(true, Ordering::Acquire)
    }

    /// Attempts to acquire without waiting.
    pub fn try_acquire(&self) -> Option<MutexGuard> {
        self.try_lock_raw().then(|| self.won())
    }

    /// Acquires the mutex (`mutex-acquire`): active spin, then passive
    /// spin, then block.
    pub fn acquire(&self) -> MutexGuard {
        self.acquire_deadline(None)
            .expect("acquire without a deadline cannot time out")
    }

    /// [`Mutex::acquire`] with a timeout (`(mutex-acquire m ms)`).
    ///
    /// # Errors
    ///
    /// [`TimedOut`] if the lock was not acquired within `timeout`.
    pub fn acquire_timeout(&self, timeout: Duration) -> Result<MutexGuard, TimedOut> {
        self.acquire_deadline(Some(Instant::now() + timeout))
            .ok_or(TimedOut)
    }

    fn acquire_deadline(&self, deadline: Option<Instant>) -> Option<MutexGuard> {
        // Phase 1: active spinning — keep the VP.
        for _ in 0..self.active_spins {
            if self.try_lock_raw() {
                return Some(self.won());
            }
            std::hint::spin_loop();
        }
        // Phase 2: passive spinning — yield the VP between attempts.
        for _ in 0..self.passive_spins {
            if self.try_lock_raw() {
                return Some(self.won());
            }
            if tc::yield_now().is_err() {
                // Off-thread caller: no VP to yield.
                std::thread::yield_now();
            }
        }
        // Phase 3: block on the mutex.
        block_until_deadline(&Value::sym("mutex"), deadline, |w: &Waiter| {
            if self.try_lock_raw() {
                return Some(self.won());
            }
            let mut waiters = self.inner.waiters.lock();
            // Re-check under the waiter lock so a release that raced with
            // us cannot strand us (it wakes everyone registered).
            if self.try_lock_raw() {
                return Some(self.won());
            }
            waiters.push(w.clone());
            None
        })
    }

    /// `with-mutex`: runs `body` holding the lock; the lock is released on
    /// normal return, on a raised exception and on thread termination.
    pub fn with<R>(&self, body: impl FnOnce() -> R) -> R {
        let _guard = self.acquire();
        body()
    }

    /// Acquires without producing a guard: for language bindings whose
    /// `mutex-acquire` / `mutex-release` are separate operations (the
    /// paper's interface).  Pair with [`Mutex::release`]; prefer
    /// [`Mutex::acquire`]/[`Mutex::with`] from Rust.
    pub fn acquire_manual(&self) {
        std::mem::forget(self.acquire());
    }

    /// Releases a manually acquired mutex (`mutex-release`), waking all
    /// blocked acquirers.
    pub fn release(&self) {
        self.release_raw();
    }

    /// Whether the mutex is currently held.
    pub fn is_locked(&self) -> bool {
        self.inner.locked.load(Ordering::Relaxed)
    }

    /// Number of threads blocked (not spinning) on the mutex.
    pub fn blocked(&self) -> usize {
        self.inner.waiters.lock().len()
    }

    fn release_raw(&self) {
        self.trace(EventKind::LockRelease);
        self.inner.locked.store(false, Ordering::Release);
        self.inner.waiters.lock().wake_all();
    }

    /// Wraps the mutex as a substrate value.
    pub fn to_value(&self) -> Value {
        Value::native("mutex", Arc::new(self.clone()))
    }

    /// Recovers a mutex from a value.
    pub fn from_value(v: &Value) -> Option<Mutex> {
        v.native_as::<Mutex>().map(|m| (*m).clone())
    }
}

/// Holds the mutex; releasing (waking all blocked acquirers) on drop.
#[must_use = "dropping the guard releases the mutex immediately"]
pub struct MutexGuard {
    mutex: Mutex,
}

impl std::fmt::Debug for MutexGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("MutexGuard")
    }
}

impl Drop for MutexGuard {
    fn drop(&mut self) {
        self.mutex.release_raw();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use sting_core::VmBuilder;

    #[test]
    fn uncontended_acquire_release() {
        let m = Mutex::new(4, 1);
        assert!(!m.is_locked());
        {
            let _g = m.acquire();
            assert!(m.is_locked());
            assert!(m.try_acquire().is_none());
        }
        assert!(!m.is_locked());
        assert!(m.try_acquire().is_some());
    }

    #[test]
    fn mutual_exclusion_under_contention() {
        let vm = VmBuilder::new().vps(2).processors(2).build();
        let m = Mutex::new(16, 2);
        let counter = Arc::new(AtomicUsize::new(0));
        let in_section = Arc::new(AtomicUsize::new(0));
        let mut ts = Vec::new();
        for _ in 0..8 {
            let m = m.clone();
            let c = counter.clone();
            let s = in_section.clone();
            ts.push(vm.fork(move |cx| {
                for _ in 0..100 {
                    m.with(|| {
                        assert_eq!(s.fetch_add(1, Ordering::SeqCst), 0, "exclusive");
                        c.fetch_add(1, Ordering::SeqCst);
                        s.fetch_sub(1, Ordering::SeqCst);
                    });
                    cx.checkpoint();
                }
                0i64
            }));
        }
        for t in ts {
            t.join_blocking().unwrap();
        }
        assert_eq!(counter.load(Ordering::SeqCst), 800);
        vm.shutdown();
    }

    #[test]
    fn with_releases_on_exception() {
        let vm = VmBuilder::new().vps(1).build();
        let m = Mutex::default();
        let m2 = m.clone();
        let t = vm.fork(move |cx| -> i64 { m2.with(|| cx.raise(Value::sym("oops"))) });
        assert_eq!(t.join_blocking(), Err(Value::sym("oops")));
        assert!(!m.is_locked(), "with-mutex released on exception");
        vm.shutdown();
    }

    #[test]
    fn blocked_acquirers_wake_on_release() {
        let vm = VmBuilder::new().vps(1).build();
        // No spinning: go straight to blocking.
        let m = Mutex::new(0, 0);
        let g = m.acquire(); // held by the OS thread
        let m2 = m.clone();
        let t = vm.fork(move |_cx| {
            let _g = m2.acquire();
            42i64
        });
        std::thread::sleep(std::time::Duration::from_millis(30));
        assert!(!t.is_determined());
        drop(g);
        assert_eq!(t.join_blocking(), Ok(Value::Int(42)));
        vm.shutdown();
    }

    #[test]
    fn value_round_trip() {
        let m = Mutex::default();
        let v = m.to_value();
        let m2 = Mutex::from_value(&v).unwrap();
        let _g = m2.acquire();
        assert!(m.is_locked(), "clones share the lock");
    }
}
