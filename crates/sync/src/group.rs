//! Speculative and barrier synchronization over thread groups (§4.3,
//! Figure 5).
//!
//! [`block_on_group`] is the paper's common mechanism: the caller blocks
//! until `count` of the given threads have determined, using one
//! [`JoinNode`] (the paper's *thread barrier* record) chained from each
//! watched thread.  `wait-for-one` is `count = 1` (OR-parallelism);
//! `wait-for-all` is `count = n` (AND-parallelism / barrier).

use crate::wait::{TimedOut, Waiter, WakeReason};
use std::sync::Arc;
use std::time::{Duration, Instant};
use sting_core::tc;
use sting_core::thread::{JoinNode, Thread, ThreadResult};
use sting_value::Value;

/// Blocks the calling thread until at least `count` of `threads` have
/// determined (Figure 5's `block-on-group`).
///
/// Threads already determined count immediately.  Callable from a plain OS
/// thread (it polls-joins in that case).
///
/// # Panics
///
/// Panics if `count > threads.len()` (the wait could never finish).
pub fn block_on_group(count: usize, threads: &[Arc<Thread>]) {
    let done = block_on_group_deadline(count, threads, None);
    debug_assert!(done, "a deadline-free group wait cannot time out");
}

/// [`block_on_group`] with a timeout.
///
/// # Errors
///
/// [`TimedOut`] if fewer than `count` threads determined within `timeout`.
///
/// # Panics
///
/// Panics if `count > threads.len()` (the wait could never finish).
pub fn block_on_group_timeout(
    count: usize,
    threads: &[Arc<Thread>],
    timeout: Duration,
) -> Result<(), TimedOut> {
    if block_on_group_deadline(count, threads, Some(Instant::now() + timeout)) {
        Ok(())
    } else {
        Err(TimedOut)
    }
}

fn block_on_group_deadline(
    count: usize,
    threads: &[Arc<Thread>],
    deadline: Option<Instant>,
) -> bool {
    assert!(
        count <= threads.len(),
        "block_on_group: count {count} exceeds group size {}",
        threads.len()
    );
    if count == 0 {
        return true;
    }
    if tc::current_owner().is_some() {
        let me = tc::current_owner().expect("checked");
        let node = JoinNode::new(me, count);
        // Deregister the barrier record however this frame is left —
        // normal return, timeout, or unwinding on termination — so no
        // watched thread later counts into (or wakes) a recycled TCB.
        struct NodeGuard(Arc<JoinNode>);
        impl Drop for NodeGuard {
            fn drop(&mut self) {
                self.0.cancel();
            }
        }
        let _guard = NodeGuard(node.clone());
        for t in threads {
            if !t.add_wait_node(&node) {
                // Already determined: count it ourselves.
                node.complete_one();
            }
        }
        loop {
            if node.remaining() == 0 {
                return true;
            }
            let w = Waiter::current();
            if node.remaining() == 0 {
                let _ = w.retire();
                return true;
            }
            match w.park_until(&Value::sym("block-on-group"), deadline) {
                WakeReason::Woken => {}
                WakeReason::TimedOut | WakeReason::Cancelled => {
                    return node.remaining() == 0;
                }
            }
        }
    } else {
        // OS-thread fallback: join threads until enough have determined.
        loop {
            let done = threads.iter().filter(|t| t.is_determined()).count();
            if done >= count {
                return true;
            }
            if let Some(d) = deadline {
                if Instant::now() >= d {
                    return false;
                }
            }
            // Join the first undetermined thread; cheap and correct, if not
            // optimal for count < n.
            if let Some(t) = threads.iter().find(|t| !t.is_determined()) {
                if count == threads.len() && deadline.is_none() {
                    let _ = t.join_blocking();
                } else {
                    let _ = t.join_blocking_timeout(Duration::from_millis(1));
                }
            }
        }
    }
}

/// Waits until one of `threads` determines and returns its index and
/// result (`wait-for-one` without the terminate step — OR-parallelism).
pub fn wait_for_one(threads: &[Arc<Thread>]) -> (usize, ThreadResult) {
    block_on_group(1, threads);
    let (i, t) = threads
        .iter()
        .enumerate()
        .find(|(_, t)| t.is_determined())
        .expect("block_on_group(1) guarantees a determined thread");
    (i, t.result().expect("determined"))
}

/// `wait-for-one` as the paper defines it: returns the first result and
/// **terminates** every other thread in the group (speculative losers are
/// reclaimed).
pub fn race(threads: &[Arc<Thread>]) -> (usize, ThreadResult) {
    let (winner, result) = wait_for_one(threads);
    for (i, t) in threads.iter().enumerate() {
        if i != winner {
            let _ = tc::thread_terminate(t, Value::sym("speculation-lost"));
        }
    }
    (winner, result)
}

/// Waits until **all** of `threads` determine and returns their results in
/// order (`wait-for-all` — AND-parallelism / barrier synchronization).
pub fn wait_for_all(threads: &[Arc<Thread>]) -> Vec<ThreadResult> {
    block_on_group(threads.len(), threads);
    threads
        .iter()
        .map(|t| t.result().expect("determined"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;
    use sting_core::{ThreadState, VmBuilder};

    #[test]
    fn wait_for_all_is_a_barrier() {
        let vm = VmBuilder::new().vps(1).build();
        let r = vm.run(|cx| {
            let ts: Vec<_> = (0..5i64).map(|i| cx.fork(move |_| i * 10)).collect();
            let results = wait_for_all(&ts);
            results
                .into_iter()
                .map(|r| r.unwrap().as_int().unwrap())
                .sum::<i64>()
        });
        assert_eq!(r.unwrap().as_int(), Some(100));
        vm.shutdown();
    }

    #[test]
    fn wait_for_one_returns_first() {
        let vm = VmBuilder::new().vps(1).build();
        let r = vm.run(|cx| {
            let slow = cx.fork(|cx| {
                cx.sleep(Duration::from_millis(200));
                1i64
            });
            let fast = cx.fork(|_| 2i64);
            let (idx, result) = wait_for_one(&[slow, fast]);
            assert_eq!(idx, 1);
            result.unwrap().as_int().unwrap()
        });
        assert_eq!(r.unwrap().as_int(), Some(2));
        vm.shutdown();
    }

    #[test]
    fn race_terminates_losers() {
        let vm = VmBuilder::new().vps(1).build();
        let r = vm.run(|cx| {
            let loser = cx.fork(|cx| -> i64 {
                loop {
                    cx.yield_now();
                }
            });
            let winner = cx.fork(|_| 7i64);
            let group = [loser.clone(), winner];
            let (idx, result) = race(&group);
            assert_eq!(idx, 1);
            // The loser must eventually determine with the loss marker.
            assert_eq!(cx.wait(&loser), Ok(Value::sym("speculation-lost")));
            result.unwrap().as_int().unwrap()
        });
        assert_eq!(r.unwrap().as_int(), Some(7));
        vm.shutdown();
    }

    #[test]
    fn already_determined_threads_count() {
        let vm = VmBuilder::new().vps(1).build();
        let r = vm.run(|cx| {
            let t = cx.fork(|_| 1i64);
            cx.wait(&t).unwrap();
            assert_eq!(t.state(), ThreadState::Determined);
            // Must return immediately.
            block_on_group(1, std::slice::from_ref(&t));
            wait_for_all(std::slice::from_ref(&t));
            1i64
        });
        assert_eq!(r.unwrap().as_int(), Some(1));
        vm.shutdown();
    }

    #[test]
    fn block_on_group_from_os_thread() {
        let vm = VmBuilder::new().vps(1).build();
        let ts: Vec<_> = (0..3i64).map(|i| vm.fork(move |_| i)).collect();
        block_on_group(3, &ts);
        assert!(ts.iter().all(|t| t.is_determined()));
        vm.shutdown();
    }

    #[test]
    #[should_panic(expected = "exceeds group size")]
    fn count_larger_than_group_panics() {
        let vm = VmBuilder::new().vps(1).build();
        let t = vm.fork(|_| 0i64);
        block_on_group(2, &[t]);
    }

    #[test]
    fn partial_count_wait() {
        let vm = VmBuilder::new().vps(1).build();
        let r = vm.run(|cx| {
            let fast: Vec<_> = (0..3i64).map(|i| cx.fork(move |_| i)).collect();
            let slow = cx.fork(|cx| {
                cx.sleep(Duration::from_millis(300));
                99i64
            });
            let mut group = fast.clone();
            group.push(slow.clone());
            // Wait for any 3 of the 4.
            block_on_group(3, &group);
            let done = group.iter().filter(|t| t.is_determined()).count();
            assert!(done >= 3);
            assert!(!slow.is_determined(), "slow thread still running");
            let _ = tc::thread_terminate(&slow, Value::Int(0));
            1i64
        });
        assert_eq!(r.unwrap().as_int(), Some(1));
        vm.shutdown();
    }
}
