//! # sting-sync — synchronization structures over the STING substrate
//!
//! The paper's thesis is that one small mechanism set — first-class
//! threads, asynchronous state requests, blocking with
//! application-controlled wake-up, and thread stealing — supports *every*
//! common concurrency paradigm.  This crate is that catalogue, built purely
//! on the public substrate API:
//!
//! * [`Future`] — result (fine-grained) parallelism with stealing (§4.1).
//! * [`Stream`] — the synchronizing streams under the Figure 2 sieve.
//! * [`Mutex`] — active/passive-spin mutexes and `with-mutex` (§4.2.1).
//! * [`Semaphore`], [`IVar`], [`Channel`] — the specialized synchronizers
//!   the paper derives from tuple-spaces and dataflow.
//! * [`block_on_group`], [`wait_for_one`], [`race`], [`wait_for_all`] —
//!   speculative (OR-parallel) and barrier (AND-parallel) synchronization
//!   (§4.3, Figure 5).
//! * [`Barrier`] — a cyclic barrier for phased master/slave programs.

#![deny(missing_docs)]

mod barrier;
mod channel;
mod future;
mod group;
mod ivar;
mod mutex;
mod semaphore;
mod stream;
pub mod wait;

pub use barrier::Barrier;
pub use channel::{Channel, SendChannelError};
pub use future::Future;
pub use group::{block_on_group, block_on_group_timeout, race, wait_for_all, wait_for_one};
pub use ivar::{IVar, WriteIVarError};
pub use mutex::{Mutex, MutexGuard};
pub use semaphore::Semaphore;
pub use stream::{Stream, StreamCursor};
pub use wait::{block_until, block_until_deadline, TimedOut, WaitList, Waiter, WakeReason};
