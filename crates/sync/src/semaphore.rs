//! Counting semaphores (one of the paper's tuple-space specializations,
//! exposed directly).

use crate::wait::{block_until, block_until_deadline, TimedOut, WaitList, Waiter};
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::{Duration, Instant};
use sting_value::Value;

struct Inner {
    permits: usize,
    waiters: WaitList,
}

/// A counting semaphore; clones share the count.
#[derive(Clone)]
pub struct Semaphore {
    inner: Arc<Mutex<Inner>>,
}

impl std::fmt::Debug for Semaphore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Semaphore({} permits)", self.permits())
    }
}

impl Semaphore {
    /// Creates a semaphore holding `permits`.
    pub fn new(permits: usize) -> Semaphore {
        Semaphore {
            inner: Arc::new(Mutex::new(Inner {
                permits,
                waiters: WaitList::new(),
            })),
        }
    }

    /// Current permit count.
    pub fn permits(&self) -> usize {
        self.inner.lock().permits
    }

    /// Takes one permit, blocking while none are available.
    pub fn acquire(&self) {
        block_until(&Value::sym("semaphore"), |w: &Waiter| self.check(w));
    }

    /// [`Semaphore::acquire`] with a timeout.
    ///
    /// # Errors
    ///
    /// [`TimedOut`] if no permit was taken within `timeout`.
    pub fn acquire_timeout(&self, timeout: Duration) -> Result<(), TimedOut> {
        block_until_deadline(
            &Value::sym("semaphore"),
            Some(Instant::now() + timeout),
            |w: &Waiter| self.check(w),
        )
        .ok_or(TimedOut)
    }

    fn check(&self, w: &Waiter) -> Option<()> {
        let mut g = self.inner.lock();
        if g.permits > 0 {
            g.permits -= 1;
            Some(())
        } else {
            g.waiters.push(w.clone());
            None
        }
    }

    /// Number of (live) threads blocked on the semaphore.
    pub fn blocked(&self) -> usize {
        self.inner.lock().waiters.len()
    }

    /// Takes a permit without blocking; `false` if none were available.
    pub fn try_acquire(&self) -> bool {
        let mut g = self.inner.lock();
        if g.permits > 0 {
            g.permits -= 1;
            true
        } else {
            false
        }
    }

    /// Returns one permit and wakes a blocked acquirer.
    pub fn release(&self) {
        let mut g = self.inner.lock();
        g.permits += 1;
        g.waiters.wake_one();
    }

    /// Runs `body` holding a permit (released on unwind too).
    pub fn with<R>(&self, body: impl FnOnce() -> R) -> R {
        struct Permit<'a>(&'a Semaphore);
        impl Drop for Permit<'_> {
            fn drop(&mut self) {
                self.0.release();
            }
        }
        self.acquire();
        let _p = Permit(self);
        body()
    }

    /// Wraps the semaphore as a substrate value.
    pub fn to_value(&self) -> Value {
        Value::native("semaphore", Arc::new(self.clone()))
    }

    /// Recovers a semaphore from a value.
    pub fn from_value(v: &Value) -> Option<Semaphore> {
        v.native_as::<Semaphore>().map(|s| (*s).clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use sting_core::VmBuilder;

    #[test]
    fn permits_bound_concurrency() {
        let vm = VmBuilder::new().vps(1).build();
        let sem = Semaphore::new(2);
        let inside = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        let mut ts = Vec::new();
        for _ in 0..6 {
            let sem = sem.clone();
            let inside = inside.clone();
            let peak = peak.clone();
            ts.push(vm.fork(move |cx| {
                sem.with(|| {
                    let now = inside.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    cx.yield_now();
                    inside.fetch_sub(1, Ordering::SeqCst);
                });
                0i64
            }));
        }
        for t in ts {
            t.join_blocking().unwrap();
        }
        assert!(peak.load(Ordering::SeqCst) <= 2, "at most 2 inside");
        assert_eq!(sem.permits(), 2);
        vm.shutdown();
    }

    #[test]
    fn try_acquire_does_not_block() {
        let sem = Semaphore::new(1);
        assert!(sem.try_acquire());
        assert!(!sem.try_acquire());
        sem.release();
        assert!(sem.try_acquire());
    }

    #[test]
    fn release_wakes_blocked() {
        let vm = VmBuilder::new().vps(1).build();
        let sem = Semaphore::new(0);
        let s2 = sem.clone();
        let t = vm.fork(move |_cx| {
            s2.acquire();
            1i64
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(!t.is_determined());
        sem.release();
        assert_eq!(t.join_blocking(), Ok(Value::Int(1)));
        vm.shutdown();
    }
}
