//! FIFO channels (CSP/CML-style message passing; the paper cites CML's
//! `sync` as one of the synchronization semantics expressible on the
//! substrate).

use crate::wait::{block_until, block_until_deadline, TimedOut, WaitList, Waiter};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::Arc;
use sting_value::Value;

struct Inner {
    queue: VecDeque<Value>,
    capacity: Option<usize>,
    closed: bool,
    recv_waiters: WaitList,
    send_waiters: WaitList,
}

/// A multi-producer multi-consumer FIFO channel; clones share the queue.
#[derive(Clone)]
pub struct Channel {
    inner: Arc<Mutex<Inner>>,
}

impl std::fmt::Debug for Channel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let g = self.inner.lock();
        f.debug_struct("Channel")
            .field("len", &g.queue.len())
            .field("capacity", &g.capacity)
            .field("closed", &g.closed)
            .finish()
    }
}

/// Error from sending on a closed channel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SendChannelError;

impl std::fmt::Display for SendChannelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("send on closed channel")
    }
}
impl std::error::Error for SendChannelError {}

impl Channel {
    /// An unbounded channel.
    pub fn unbounded() -> Channel {
        Channel::with_capacity(None)
    }

    /// A bounded channel: sends block while `capacity` items are queued.
    pub fn bounded(capacity: usize) -> Channel {
        Channel::with_capacity(Some(capacity.max(1)))
    }

    fn with_capacity(capacity: Option<usize>) -> Channel {
        Channel {
            inner: Arc::new(Mutex::new(Inner {
                queue: VecDeque::new(),
                capacity,
                closed: false,
                recv_waiters: WaitList::new(),
                send_waiters: WaitList::new(),
            })),
        }
    }

    /// Sends `v`, blocking while a bounded channel is full.
    ///
    /// # Errors
    ///
    /// [`SendChannelError`] if the channel is closed.
    pub fn send(&self, v: Value) -> Result<(), SendChannelError> {
        let mut item = Some(v);
        block_until(&Value::sym("channel-send"), |w: &Waiter| {
            self.send_check(&mut item, w)
        })
    }

    /// [`Channel::send`] with a timeout.
    ///
    /// # Errors
    ///
    /// `Err(Ok(TimedOut))` if the value was not queued within `timeout`
    /// (the value is simply dropped); `Err(Err(SendChannelError))` if the
    /// channel is closed.
    pub fn send_timeout(
        &self,
        v: Value,
        timeout: std::time::Duration,
    ) -> Result<(), Result<TimedOut, SendChannelError>> {
        let mut item = Some(v);
        match block_until_deadline(
            &Value::sym("channel-send"),
            Some(std::time::Instant::now() + timeout),
            |w: &Waiter| self.send_check(&mut item, w),
        ) {
            Some(Ok(())) => Ok(()),
            Some(Err(e)) => Err(Err(e)),
            None => Err(Ok(TimedOut)),
        }
    }

    fn send_check(
        &self,
        item: &mut Option<Value>,
        w: &Waiter,
    ) -> Option<Result<(), SendChannelError>> {
        let mut g = self.inner.lock();
        if g.closed {
            return Some(Err(SendChannelError));
        }
        if g.capacity.is_none_or(|c| g.queue.len() < c) {
            g.queue.push_back(item.take().expect("send value"));
            g.recv_waiters.wake_one();
            Some(Ok(()))
        } else {
            g.send_waiters.push(w.clone());
            None
        }
    }

    /// Receives the next value, blocking while empty; `None` when the
    /// channel is closed and drained.
    pub fn recv(&self) -> Option<Value> {
        block_until(&Value::sym("channel-recv"), |w: &Waiter| self.recv_check(w))
    }

    /// [`Channel::recv`] with a timeout.
    ///
    /// # Errors
    ///
    /// [`TimedOut`] if nothing arrived within `timeout`; `Ok(None)` still
    /// means closed-and-drained.
    pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<Option<Value>, TimedOut> {
        block_until_deadline(
            &Value::sym("channel-recv"),
            Some(std::time::Instant::now() + timeout),
            |w: &Waiter| self.recv_check(w),
        )
        .ok_or(TimedOut)
    }

    fn recv_check(&self, w: &Waiter) -> Option<Option<Value>> {
        let mut g = self.inner.lock();
        if let Some(v) = g.queue.pop_front() {
            g.send_waiters.wake_one();
            Some(Some(v))
        } else if g.closed {
            Some(None)
        } else {
            g.recv_waiters.push(w.clone());
            None
        }
    }

    /// Receives without blocking.
    pub fn try_recv(&self) -> Option<Value> {
        let mut g = self.inner.lock();
        let v = g.queue.pop_front();
        if v.is_some() {
            g.send_waiters.wake_one();
        }
        v
    }

    /// Closes the channel: senders fail, drained receivers get `None`.
    pub fn close(&self) {
        let mut g = self.inner.lock();
        g.closed = true;
        g.recv_waiters.wake_all();
        g.send_waiters.wake_all();
    }

    /// Number of (live) threads blocked in [`Channel::recv`].
    pub fn blocked_receivers(&self) -> usize {
        self.inner.lock().recv_waiters.len()
    }

    /// Number of (live) threads blocked in [`Channel::send`].
    pub fn blocked_senders(&self) -> usize {
        self.inner.lock().send_waiters.len()
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.inner.lock().queue.len()
    }

    /// Whether no items are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Wraps the channel as a substrate value.
    pub fn to_value(&self) -> Value {
        Value::native("channel", Arc::new(self.clone()))
    }

    /// Recovers a channel from a value.
    pub fn from_value(v: &Value) -> Option<Channel> {
        v.native_as::<Channel>().map(|c| (*c).clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sting_core::VmBuilder;

    #[test]
    fn fifo_order() {
        let ch = Channel::unbounded();
        for i in 0..5i64 {
            ch.send(Value::Int(i)).unwrap();
        }
        ch.close();
        let got: Vec<i64> = std::iter::from_fn(|| ch.recv())
            .map(|v| v.as_int().unwrap())
            .collect();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn recv_blocks_until_send() {
        let vm = VmBuilder::new().vps(1).build();
        let ch = Channel::unbounded();
        let ch2 = ch.clone();
        let t = vm.fork(move |_cx| ch2.recv().unwrap());
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(!t.is_determined());
        ch.send(Value::Int(8)).unwrap();
        assert_eq!(t.join_blocking(), Ok(Value::Int(8)));
        vm.shutdown();
    }

    #[test]
    fn bounded_send_blocks_when_full() {
        let vm = VmBuilder::new().vps(1).build();
        let ch = Channel::bounded(1);
        ch.send(Value::Int(1)).unwrap();
        let ch2 = ch.clone();
        let sender = vm.fork(move |_cx| {
            ch2.send(Value::Int(2)).unwrap();
            0i64
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(!sender.is_determined(), "bounded send must block");
        assert_eq!(ch.recv(), Some(Value::Int(1)));
        sender.join_blocking().unwrap();
        assert_eq!(ch.recv(), Some(Value::Int(2)));
        vm.shutdown();
    }

    #[test]
    fn close_drains_then_none() {
        let ch = Channel::unbounded();
        ch.send(Value::Int(1)).unwrap();
        ch.close();
        assert_eq!(ch.recv(), Some(Value::Int(1)));
        assert_eq!(ch.recv(), None);
        assert_eq!(ch.send(Value::Int(2)), Err(SendChannelError));
    }

    #[test]
    fn many_producers_one_consumer() {
        let vm = VmBuilder::new().vps(2).build();
        let ch = Channel::unbounded();
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let ch = ch.clone();
                vm.fork(move |_cx| {
                    for i in 0..25i64 {
                        ch.send(Value::Int(p * 100 + i)).unwrap();
                    }
                    0i64
                })
            })
            .collect();
        let mut got = 0;
        while got < 100 {
            ch.recv().unwrap();
            got += 1;
        }
        for p in producers {
            p.join_blocking().unwrap();
        }
        vm.shutdown();
    }
}
