//! The blocking protocol shared by every synchronization structure.
//!
//! STING "imposes no a priori synchronization protocol on thread access —
//! application programs are expected to build abstractions that regulate
//! the coordination of threads".  This module is the one abstraction they
//! all share: a list of parked waiters plus a loop that re-checks a
//! condition around a park (wake-ups may be spurious).
//!
//! Waiters are usually STING threads (parked via the thread controller),
//! but plain OS threads are supported too — they park on a condvar — so
//! synchronization structures remain usable from `main` and from tests.

use parking_lot::{Condvar, Mutex};
use std::sync::Arc;
use sting_core::tc;
use sting_core::thread::Thread;
use sting_value::Value;

/// One parked (or about-to-park) waiter.
#[derive(Clone)]
pub enum Waiter {
    /// A STING thread; waking goes through the thread controller.
    Green(Arc<Thread>),
    /// A plain OS thread parked on a condvar.
    Os(Arc<(Mutex<bool>, Condvar)>),
}

impl Waiter {
    /// Captures the calling context as a waiter.
    pub fn current() -> Waiter {
        match tc::current_owner() {
            Some(t) => Waiter::Green(t),
            None => Waiter::Os(Arc::new((Mutex::new(false), Condvar::new()))),
        }
    }

    /// Parks until [`WaitList::wake_one`]/[`wake_all`](WaitList::wake_all)
    /// releases us (possibly spuriously for green threads).
    pub fn park(&self, blocker: &Value) {
        match self {
            Waiter::Green(_) => {
                let _ = tc::block_current(Some(blocker.clone()));
            }
            Waiter::Os(cv) => {
                let mut flag = cv.0.lock();
                while !*flag {
                    cv.1.wait(&mut flag);
                }
                *flag = false;
            }
        }
    }

    /// Wakes this waiter (idempotent; green threads may observe it as a
    /// spurious wake-up and must re-check their condition).
    pub fn wake(&self) {
        match self {
            Waiter::Green(t) => tc::unblock(t),
            Waiter::Os(cv) => {
                let mut flag = cv.0.lock();
                *flag = true;
                cv.1.notify_all();
            }
        }
    }
}

/// An intrusive list of waiters, embedded in a structure's locked state.
#[derive(Default)]
pub struct WaitList {
    waiters: Vec<Waiter>,
}

impl WaitList {
    /// Creates an empty wait list.
    pub fn new() -> WaitList {
        WaitList::default()
    }

    /// Registers `w`; call with the owning structure's lock held, *before*
    /// releasing it and parking.
    pub fn push(&mut self, w: Waiter) {
        self.waiters.push(w);
    }

    /// Wakes every waiter (the paper's mutex-release behaviour: "all
    /// threads blocked on this mutex are restored onto some ready queue").
    pub fn wake_all(&mut self) {
        for w in self.waiters.drain(..) {
            w.wake();
        }
    }

    /// Wakes the longest-waiting waiter, if any.
    pub fn wake_one(&mut self) {
        if !self.waiters.is_empty() {
            self.waiters.remove(0).wake();
        }
    }

    /// Number of registered waiters.
    pub fn len(&self) -> usize {
        self.waiters.len()
    }

    /// Whether no waiters are registered.
    pub fn is_empty(&self) -> bool {
        self.waiters.is_empty()
    }
}

/// Blocks until `condition` yields `Some(T)`.
///
/// `lock_and_check` must: take the structure's lock, evaluate the
/// condition, and — if it fails — register the supplied waiter and release
/// the lock (by returning `None` after pushing).  The loop re-checks after
/// every wake-up, so spurious wake-ups are harmless.
pub fn block_until<T>(blocker: Value, mut lock_and_check: impl FnMut(&Waiter) -> Option<T>) -> T {
    loop {
        let w = Waiter::current();
        if let Some(v) = lock_and_check(&w) {
            return v;
        }
        w.park(&blocker);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn os_waiter_park_wake_round_trip() {
        // Off any STING thread, a waiter parks on a condvar.
        let w = Waiter::current();
        assert!(matches!(w, Waiter::Os(_)));
        let w2 = w.clone();
        let h = std::thread::spawn(move || {
            w2.park(&Value::sym("test"));
            42
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        w.wake();
        assert_eq!(h.join().unwrap(), 42);
    }

    #[test]
    fn wake_all_drains_the_list() {
        let mut l = WaitList::new();
        assert!(l.is_empty());
        let (a, b) = (Waiter::current(), Waiter::current());
        l.push(a);
        l.push(b);
        assert_eq!(l.len(), 2);
        l.wake_all();
        assert!(l.is_empty());
    }

    #[test]
    fn wake_one_is_fifo() {
        let mut l = WaitList::new();
        let a = Waiter::current();
        l.push(a);
        l.push(Waiter::current());
        l.wake_one();
        assert_eq!(l.len(), 1);
        l.wake_one();
        l.wake_one(); // extra wakes are harmless
        assert!(l.is_empty());
    }
}
