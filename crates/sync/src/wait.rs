//! The blocking protocol shared by every synchronization structure —
//! re-exported from the substrate core.
//!
//! Historically this crate carried its own waiter list; the protocol now
//! lives in [`sting_core::wait`] (generation-tagged wait episodes with a
//! claim token), so blocking is a substrate service shared with
//! tuple-spaces and thread joins: wake-ups are consumed exactly once, a
//! terminated or timed-out waiter is deregistered promptly, and every
//! park can carry a deadline.  See DESIGN.md, "Blocking protocol".
//!
//! Waiters are usually STING threads (parked via the thread controller),
//! but plain OS threads are supported too — they park on a condvar — so
//! synchronization structures remain usable from `main` and from tests.

pub use sting_core::wait::{
    block_until, block_until_deadline, TimedOut, WaitList, Waiter, WakeReason,
};
