//! Futures: result parallelism over STING threads (§4.1).
//!
//! "Threads are a natural representation for futures": a [`Future`] wraps a
//! thread whose value is demanded with [`Future::touch`].  Touching a
//! delayed or scheduled future runs it directly on the toucher's TCB — the
//! thread-stealing optimization that throttles process creation and
//! improves locality (like load-based inlining and lazy task creation, but
//! with better locality, per §4.1.1).
//!
//! ```
//! use sting_core::VmBuilder;
//! use sting_sync::Future;
//!
//! let vm = VmBuilder::new().vps(1).build();
//! let r = vm.run(|cx| {
//!     let f = Future::spawn(cx, |_cx| 6i64 * 7);
//!     f.touch().unwrap().as_int().unwrap()
//! });
//! assert_eq!(r.unwrap().as_int(), Some(42));
//! vm.shutdown();
//! ```

use std::sync::Arc;
use sting_core::tc::{self, Cx};
use sting_core::thread::{Thread, ThreadResult};
use sting_core::vm::Vm;
use sting_value::Value;

/// A value being computed concurrently; demand it with [`Future::touch`].
#[derive(Debug, Clone)]
pub struct Future {
    thread: Arc<Thread>,
}

impl Future {
    /// Eager future: forks a thread immediately (MultiLisp's `(future E)`).
    pub fn spawn<F, V>(cx: &Cx, f: F) -> Future
    where
        F: FnOnce(&Cx) -> V + Send + 'static,
        V: Into<Value>,
    {
        Future { thread: cx.fork(f) }
    }

    /// Eager future forked from outside the machine.
    pub fn spawn_on_vm<F, V>(vm: &Arc<Vm>, f: F) -> Future
    where
        F: FnOnce(&Cx) -> V + Send + 'static,
        V: Into<Value>,
    {
        Future { thread: vm.fork(f) }
    }

    /// Lazy future: a delayed thread, run only when touched (and then
    /// usually *stolen* straight onto the toucher's TCB).
    pub fn delay<F, V>(vm: &Arc<Vm>, f: F) -> Future
    where
        F: FnOnce(&Cx) -> V + Send + 'static,
        V: Into<Value>,
    {
        Future {
            thread: vm.delayed(f),
        }
    }

    /// The underlying first-class thread.
    pub fn thread(&self) -> &Arc<Thread> {
        &self.thread
    }

    /// Whether the future has determined.
    pub fn is_determined(&self) -> bool {
        self.thread.is_determined()
    }

    /// Demands the value: returns immediately if determined, steals a
    /// claimable thread onto this TCB, or blocks until the computation
    /// finishes.  `Err` carries an exception raised by the computation.
    pub fn touch(&self) -> ThreadResult {
        tc::touch(&self.thread)
    }

    /// [`Future::touch`] with a timeout.  A determined future returns
    /// immediately; otherwise the toucher waits (it does *not* steal — a
    /// stolen computation runs on this TCB and could not be abandoned at
    /// the deadline).
    ///
    /// # Errors
    ///
    /// [`crate::TimedOut`] if the computation did not determine within
    /// `timeout`.
    pub fn touch_timeout(
        &self,
        timeout: std::time::Duration,
    ) -> Result<ThreadResult, crate::TimedOut> {
        self.thread.wait_timeout(timeout).ok_or(crate::TimedOut)
    }

    /// Like [`Future::touch`], but re-raises an exceptional result in the
    /// toucher (MultiLisp `touch` semantics under error propagation).
    ///
    /// # Panics
    ///
    /// Raises (via the thread controller) when called on a STING thread and
    /// the computation failed; panics when called off-thread on failure.
    pub fn force(&self, cx: &Cx) -> Value {
        match self.touch() {
            Ok(v) => v,
            Err(e) => cx.raise(e),
        }
    }

    /// Wraps the future as a substrate value (futures are data).
    pub fn to_value(&self) -> Value {
        self.thread.to_value()
    }

    /// Recovers a future from a thread value.
    pub fn from_value(v: &Value) -> Option<Future> {
        v.native_as::<Thread>().map(|thread| Future { thread })
    }
}

impl From<Arc<Thread>> for Future {
    fn from(thread: Arc<Thread>) -> Future {
        Future { thread }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sting_core::VmBuilder;

    #[test]
    fn eager_future() {
        let vm = VmBuilder::new().vps(1).build();
        let r = vm.run(|cx| {
            let f = Future::spawn(cx, |_| 10i64);
            let g = Future::spawn(cx, |_| 20i64);
            f.touch().unwrap().as_int().unwrap() + g.touch().unwrap().as_int().unwrap()
        });
        assert_eq!(r.unwrap().as_int(), Some(30));
        vm.shutdown();
    }

    #[test]
    fn lazy_future_is_stolen() {
        let vm = VmBuilder::new().vps(1).build();
        let before = vm.counters().snapshot();
        let r = vm.run(|cx| {
            let f = Future::delay(&cx.vm(), |_| 5i64);
            assert!(!f.is_determined());
            f.touch().unwrap().as_int().unwrap()
        });
        assert_eq!(r.unwrap().as_int(), Some(5));
        assert_eq!(vm.counters().snapshot().since(&before).steals, 1);
        vm.shutdown();
    }

    #[test]
    fn touch_from_os_thread() {
        let vm = VmBuilder::new().vps(1).build();
        let f = Future::spawn_on_vm(&vm, |_| 3i64);
        assert_eq!(f.touch().unwrap().as_int(), Some(3));
        vm.shutdown();
    }

    #[test]
    fn failed_future_propagates_exception() {
        let vm = VmBuilder::new().vps(1).build();
        let r = vm.run(|cx| {
            let f = Future::spawn(cx, |cx| -> i64 { cx.raise(Value::sym("bad")) });
            match f.touch() {
                Err(e) => e,
                Ok(_) => Value::sym("unexpected"),
            }
        });
        assert_eq!(r.unwrap(), Value::sym("bad"));
        vm.shutdown();
    }

    #[test]
    fn force_reraises_in_toucher() {
        let vm = VmBuilder::new().vps(1).build();
        let t = vm.fork(|cx| -> i64 {
            let f = Future::delay(&cx.vm(), |cx| -> i64 { cx.raise(Value::sym("inner")) });
            let _ = f.force(cx); // re-raises
            0
        });
        assert_eq!(t.join_blocking(), Err(Value::sym("inner")));
        vm.shutdown();
    }

    #[test]
    fn round_trips_as_value() {
        let vm = VmBuilder::new().vps(1).build();
        let f = Future::spawn_on_vm(&vm, |_| 9i64);
        let v = f.to_value();
        let g = Future::from_value(&v).unwrap();
        assert_eq!(g.touch().unwrap().as_int(), Some(9));
        assert!(Future::from_value(&Value::Int(1)).is_none());
        vm.shutdown();
    }
}
