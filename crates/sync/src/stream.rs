//! Synchronizing streams: the sieve substrate from Figure 2.
//!
//! A [`Stream`] is an append-only sequence with "a blocking operation on
//! stream access (`hd`) and an atomic operation for appending to the end
//! (`attach`)".  Readers hold a [`StreamCursor`] — a persistent position,
//! so `rest` is cheap and multiple readers can consume the same stream at
//! their own pace (each sieve filter reads its input stream independently).
//!
//! ```
//! use sting_core::VmBuilder;
//! use sting_sync::Stream;
//! use sting_value::Value;
//!
//! let vm = VmBuilder::new().vps(1).build();
//! let r = vm.run(|cx| {
//!     let s = Stream::new();
//!     let writer = {
//!         let s = s.clone();
//!         cx.fork(move |_cx| {
//!             for i in 0..3i64 {
//!                 s.attach(Value::Int(i));
//!             }
//!             s.close();
//!             0i64
//!         })
//!     };
//!     let mut cur = s.cursor();
//!     let mut sum = 0i64;
//!     while let Some(v) = cur.next() {
//!         sum += v.as_int().unwrap();
//!     }
//!     cx.wait(&writer).unwrap();
//!     sum
//! });
//! assert_eq!(r.unwrap().as_int(), Some(3));
//! vm.shutdown();
//! ```

use crate::wait::{block_until, block_until_deadline, TimedOut, WaitList, Waiter};
use parking_lot::Mutex;
use std::sync::Arc;
use sting_value::Value;

struct Inner {
    items: Vec<Value>,
    closed: bool,
    waiters: WaitList,
}

/// An append-only synchronizing stream (create with [`Stream::new`]).
#[derive(Clone)]
pub struct Stream {
    inner: Arc<Mutex<Inner>>,
}

impl Default for Stream {
    fn default() -> Stream {
        Stream::new()
    }
}

impl std::fmt::Debug for Stream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let g = self.inner.lock();
        f.debug_struct("Stream")
            .field("len", &g.items.len())
            .field("closed", &g.closed)
            .finish()
    }
}

impl Stream {
    /// Creates an empty open stream.
    pub fn new() -> Stream {
        Stream {
            inner: Arc::new(Mutex::new(Inner {
                items: Vec::new(),
                closed: false,
                waiters: WaitList::new(),
            })),
        }
    }

    /// Atomically appends `v` and wakes blocked readers (`attach`).
    ///
    /// # Panics
    ///
    /// Panics if the stream is closed.
    pub fn attach(&self, v: Value) {
        let mut g = self.inner.lock();
        assert!(!g.closed, "attach on a closed stream");
        g.items.push(v);
        g.waiters.wake_all();
    }

    /// Closes the stream: readers past the end observe end-of-stream
    /// instead of blocking.
    pub fn close(&self) {
        let mut g = self.inner.lock();
        g.closed = true;
        g.waiters.wake_all();
    }

    /// Whether [`Stream::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.inner.lock().closed
    }

    /// Number of elements attached so far.
    pub fn len(&self) -> usize {
        self.inner.lock().items.len()
    }

    /// Whether no elements have been attached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of (live) threads blocked in [`StreamCursor::hd`].
    pub fn blocked(&self) -> usize {
        self.inner.lock().waiters.len()
    }

    /// A cursor positioned at the head of the stream.
    pub fn cursor(&self) -> StreamCursor {
        StreamCursor {
            stream: self.clone(),
            pos: 0,
        }
    }

    /// Wraps the stream as a substrate value.
    pub fn to_value(&self) -> Value {
        Value::native("stream", Arc::new(self.clone()))
    }

    /// Recovers a stream from a value.
    pub fn from_value(v: &Value) -> Option<Stream> {
        v.native_as::<Stream>().map(|s| (*s).clone())
    }

    fn get(&self, pos: usize) -> Option<Option<Value>> {
        let g = self.inner.lock();
        if pos < g.items.len() {
            Some(Some(g.items[pos].clone()))
        } else if g.closed {
            Some(None)
        } else {
            drop(g);
            None
        }
    }
}

/// A persistent read position in a [`Stream`]; `clone` forks the position.
#[derive(Debug, Clone)]
pub struct StreamCursor {
    stream: Stream,
    pos: usize,
}

impl StreamCursor {
    /// The element at this position, blocking until a writer attaches one
    /// (`hd`).  Returns `None` if the stream closed before this position.
    pub fn hd(&self) -> Option<Value> {
        if let Some(v) = self.stream.get(self.pos) {
            return v;
        }
        block_until(&Value::sym("stream-hd"), |w| self.check(w))
    }

    /// [`StreamCursor::hd`] with a timeout.  `Ok(None)` still means the
    /// stream closed before this position.
    ///
    /// # Errors
    ///
    /// [`TimedOut`] if no element appeared at this position within
    /// `timeout`.
    pub fn hd_timeout(&self, timeout: std::time::Duration) -> Result<Option<Value>, TimedOut> {
        if let Some(v) = self.stream.get(self.pos) {
            return Ok(v);
        }
        block_until_deadline(
            &Value::sym("stream-hd"),
            Some(std::time::Instant::now() + timeout),
            |w| self.check(w),
        )
        .ok_or(TimedOut)
    }

    fn check(&self, w: &Waiter) -> Option<Option<Value>> {
        let mut g = self.stream.inner.lock();
        if self.pos < g.items.len() {
            Some(Some(g.items[self.pos].clone()))
        } else if g.closed {
            Some(None)
        } else {
            g.waiters.push(w.clone());
            None
        }
    }

    /// The cursor one past this element (`rest`); does not block.
    pub fn rest(&self) -> StreamCursor {
        StreamCursor {
            stream: self.stream.clone(),
            pos: self.pos + 1,
        }
    }

    /// Blocking iterator step: `hd` then advance.  (Deliberately named
    /// like `Iterator::next`; the cursor cannot implement `Iterator`
    /// because `hd` blocks on the substrate.)
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<Value> {
        let v = self.hd()?;
        self.pos += 1;
        Some(v)
    }

    /// [`StreamCursor::next`] with a timeout: the position only advances
    /// when an element is returned.
    ///
    /// # Errors
    ///
    /// [`TimedOut`] if no element appeared within `timeout`.
    pub fn next_timeout(
        &mut self,
        timeout: std::time::Duration,
    ) -> Result<Option<Value>, TimedOut> {
        match self.hd_timeout(timeout)? {
            Some(v) => {
                self.pos += 1;
                Ok(Some(v))
            }
            None => Ok(None),
        }
    }

    /// Current position.
    pub fn position(&self) -> usize {
        self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sting_core::VmBuilder;

    #[test]
    fn basic_produce_consume() {
        let vm = VmBuilder::new().vps(1).build();
        let s = Stream::new();
        let s2 = s.clone();
        let consumer = vm.fork(move |_cx| {
            let mut c = s2.cursor();
            let mut sum = 0i64;
            while let Some(v) = c.next() {
                sum += v.as_int().unwrap();
            }
            sum
        });
        for i in 1..=4i64 {
            s.attach(Value::Int(i));
        }
        s.close();
        assert_eq!(consumer.join_blocking(), Ok(Value::Int(10)));
        vm.shutdown();
    }

    #[test]
    fn hd_blocks_until_attach() {
        let vm = VmBuilder::new().vps(1).build();
        let s = Stream::new();
        let s2 = s.clone();
        let reader = vm.fork(move |_cx| s2.cursor().hd().unwrap());
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(!reader.is_determined(), "reader must block on empty stream");
        s.attach(Value::Int(77));
        assert_eq!(reader.join_blocking(), Ok(Value::Int(77)));
        vm.shutdown();
    }

    #[test]
    fn multiple_independent_cursors() {
        let vm = VmBuilder::new().vps(1).build();
        let s = Stream::new();
        for i in 0..5i64 {
            s.attach(Value::Int(i));
        }
        s.close();
        let a: Vec<i64> = {
            let mut c = s.cursor();
            std::iter::from_fn(|| c.next())
                .map(|v| v.as_int().unwrap())
                .collect()
        };
        let b: Vec<i64> = {
            let mut c = s.cursor();
            std::iter::from_fn(|| c.next())
                .map(|v| v.as_int().unwrap())
                .collect()
        };
        assert_eq!(a, b);
        assert_eq!(a, vec![0, 1, 2, 3, 4]);
        vm.shutdown();
    }

    #[test]
    fn rest_is_persistent() {
        let s = Stream::new();
        s.attach(Value::Int(1));
        s.attach(Value::Int(2));
        s.close();
        let c0 = s.cursor();
        let c1 = c0.rest();
        assert_eq!(c0.hd(), Some(Value::Int(1)));
        assert_eq!(c1.hd(), Some(Value::Int(2)));
        assert_eq!(c0.hd(), Some(Value::Int(1)), "c0 unaffected by c1");
        assert_eq!(c1.rest().hd(), None);
    }

    #[test]
    #[should_panic(expected = "attach on a closed stream")]
    fn attach_after_close_panics() {
        let s = Stream::new();
        s.close();
        s.attach(Value::Int(1));
    }

    #[test]
    fn value_round_trip() {
        let s = Stream::new();
        s.attach(Value::Int(5));
        let v = s.to_value();
        let s2 = Stream::from_value(&v).unwrap();
        assert_eq!(s2.len(), 1);
    }
}
