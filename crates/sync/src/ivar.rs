//! Single-assignment cells (I-structures, the paper's dataflow
//! synchronization class — reference [3], Arvind et al.).

use crate::wait::{block_until, block_until_deadline, TimedOut, WaitList, Waiter};
use parking_lot::Mutex;
use std::sync::Arc;
use sting_value::Value;

struct Inner {
    value: Option<Value>,
    waiters: WaitList,
}

/// A write-once cell: reads block until the single write.
#[derive(Clone)]
pub struct IVar {
    inner: Arc<Mutex<Inner>>,
}

impl Default for IVar {
    fn default() -> IVar {
        IVar::new()
    }
}

impl std::fmt::Debug for IVar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "IVar(full: {})", self.is_full())
    }
}

/// Error from writing an already-written [`IVar`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WriteIVarError;

impl std::fmt::Display for WriteIVarError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("ivar already written")
    }
}
impl std::error::Error for WriteIVarError {}

impl IVar {
    /// Creates an empty cell.
    pub fn new() -> IVar {
        IVar {
            inner: Arc::new(Mutex::new(Inner {
                value: None,
                waiters: WaitList::new(),
            })),
        }
    }

    /// Whether the cell has been written.
    pub fn is_full(&self) -> bool {
        self.inner.lock().value.is_some()
    }

    /// Writes the value, waking all readers.
    ///
    /// # Errors
    ///
    /// [`WriteIVarError`] if the cell was already written.
    pub fn put(&self, v: Value) -> Result<(), WriteIVarError> {
        let mut g = self.inner.lock();
        if g.value.is_some() {
            return Err(WriteIVarError);
        }
        g.value = Some(v);
        g.waiters.wake_all();
        Ok(())
    }

    /// Reads the value, blocking until [`IVar::put`].
    pub fn get(&self) -> Value {
        block_until(&Value::sym("ivar"), |w: &Waiter| self.check(w))
    }

    /// [`IVar::get`] with a timeout.
    ///
    /// # Errors
    ///
    /// [`TimedOut`] if the cell was not written within `timeout`.
    pub fn get_timeout(&self, timeout: std::time::Duration) -> Result<Value, TimedOut> {
        block_until_deadline(
            &Value::sym("ivar"),
            Some(std::time::Instant::now() + timeout),
            |w: &Waiter| self.check(w),
        )
        .ok_or(TimedOut)
    }

    fn check(&self, w: &Waiter) -> Option<Value> {
        let mut g = self.inner.lock();
        match &g.value {
            Some(v) => Some(v.clone()),
            None => {
                g.waiters.push(w.clone());
                None
            }
        }
    }

    /// Number of (live) threads blocked reading the cell.
    pub fn blocked(&self) -> usize {
        self.inner.lock().waiters.len()
    }

    /// Reads without blocking.
    pub fn try_get(&self) -> Option<Value> {
        self.inner.lock().value.clone()
    }

    /// Wraps the cell as a substrate value.
    pub fn to_value(&self) -> Value {
        Value::native("ivar", Arc::new(self.clone()))
    }

    /// Recovers a cell from a value.
    pub fn from_value(v: &Value) -> Option<IVar> {
        v.native_as::<IVar>().map(|i| (*i).clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sting_core::VmBuilder;

    #[test]
    fn get_blocks_until_put() {
        let vm = VmBuilder::new().vps(1).build();
        let iv = IVar::new();
        let iv2 = iv.clone();
        let reader = vm.fork(move |_cx| iv2.get());
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(!reader.is_determined());
        iv.put(Value::Int(5)).unwrap();
        assert_eq!(reader.join_blocking(), Ok(Value::Int(5)));
        vm.shutdown();
    }

    #[test]
    fn double_put_fails() {
        let iv = IVar::new();
        iv.put(Value::Int(1)).unwrap();
        assert_eq!(iv.put(Value::Int(2)), Err(WriteIVarError));
        assert_eq!(iv.try_get(), Some(Value::Int(1)));
    }

    #[test]
    fn many_readers_one_writer() {
        let vm = VmBuilder::new().vps(1).build();
        let iv = IVar::new();
        let readers: Vec<_> = (0..5)
            .map(|_| {
                let iv = iv.clone();
                vm.fork(move |_cx| iv.get())
            })
            .collect();
        iv.put(Value::Int(9)).unwrap();
        for r in readers {
            assert_eq!(r.join_blocking(), Ok(Value::Int(9)));
        }
        vm.shutdown();
    }
}
