//! Scheme-level concurrency: the paper's own programming idioms running on
//! the substrate — futures, stealing, streams (the Figure 2 sieve), tuple
//! spaces, speculative and barrier synchronization, preemption.

use std::sync::Arc;
use std::time::Duration;
use sting_core::VmBuilder;
use sting_scheme::{Interp, SchemeError};
use sting_value::Value;

fn interp(vps: usize) -> (Arc<sting_core::Vm>, Interp) {
    let vm = VmBuilder::new()
        .vps(vps)
        .tick(Duration::from_micros(300))
        .build();
    let i = Interp::new(vm.clone());
    (vm, i)
}

fn ev(i: &Interp, src: &str) -> Value {
    match i.eval(src) {
        Ok(v) => v,
        Err(e) => panic!("eval {src:?} failed: {e}"),
    }
}

#[test]
fn fork_and_wait() {
    let (vm, i) = interp(1);
    assert_eq!(
        ev(&i, "(thread-wait (fork-thread (lambda () (* 6 7))))").as_int(),
        Some(42)
    );
    vm.shutdown();
}

#[test]
fn future_touch_sugar() {
    let (vm, i) = interp(1);
    assert_eq!(ev(&i, "(touch (future (+ 1 2)))").as_int(), Some(3));
    // delay = create-thread: runs only when demanded, usually stolen.
    assert_eq!(ev(&i, "(touch (delay (* 10 10)))").as_int(), Some(100));
    vm.shutdown();
}

#[test]
fn delayed_threads_are_stolen_on_touch() {
    let (vm, i) = interp(1);
    let v = ev(
        &i,
        "(let ((before (substrate-counter 'steals))
               (l (delay 99)))
           (touch l)
           (- (substrate-counter 'steals) before))",
    );
    assert_eq!(v.as_int(), Some(1), "touch of a delayed thread steals it");
    vm.shutdown();
}

#[test]
fn thread_state_transitions_visible() {
    let (vm, i) = interp(1);
    assert_eq!(ev(&i, "(thread-state (delay 1))"), Value::sym("delayed"));
    assert_eq!(
        ev(
            &i,
            "(let ((t (fork-thread (lambda () 5)))) (thread-wait t) (thread-state t))"
        ),
        Value::sym("determined")
    );
    vm.shutdown();
}

#[test]
fn exceptions_cross_thread_boundaries() {
    let (vm, i) = interp(1);
    // The forked thread raises; the waiter observes it as an exception.
    match i.eval("(thread-wait (fork-thread (lambda () (raise 'child-boom))))") {
        Err(SchemeError::Raised(v)) => assert_eq!(v, Value::sym("child-boom")),
        other => panic!("{other:?}"),
    }
    // ... and can catch it.
    assert_eq!(
        ev(
            &i,
            "(try (thread-wait (fork-thread (lambda () (raise 'oops))))
                  (catch (e) (list 'caught e)))"
        )
        .to_string(),
        "(caught oops)"
    );
    vm.shutdown();
}

#[test]
fn closures_capture_across_fork() {
    let (vm, i) = interp(1);
    assert_eq!(
        ev(
            &i,
            "(let ((n 20)) (thread-wait (fork-thread (lambda () (+ n 22)))))"
        )
        .as_int(),
        Some(42)
    );
    vm.shutdown();
}

#[test]
fn fork_isolates_captured_state_from_parent() {
    // Copy-on-share: the child gets its own copy of the captured
    // environment at fork time (like Erlang process isolation); the
    // parent's frame is untouched.  Threads share state through the
    // substrate's synchronizing objects instead (tuple spaces, streams).
    let (vm, i) = interp(1);
    assert_eq!(
        ev(
            &i,
            "(let ((cell 1))
               (let ((child (fork-thread (lambda () (set! cell 41) cell))))
                 (list (thread-wait child) cell)))"
        )
        .to_string(),
        "(41 1)"
    );
    vm.shutdown();
}

#[test]
fn toplevel_closures_share_state_across_calls() {
    // But closures converted *once* (e.g. bound at top level) share their
    // environment between every caller — the shared-frame mechanism.
    let (vm, i) = interp(1);
    ev(
        &i,
        "(define counter (let ((n 0)) (lambda () (set! n (+ n 1)) n)))",
    );
    assert_eq!(ev(&i, "(counter)").as_int(), Some(1));
    assert_eq!(
        ev(&i, "(thread-wait (fork-thread (lambda () (counter))))").as_int(),
        Some(2),
        "a forked thread increments the same shared frame"
    );
    assert_eq!(ev(&i, "(counter)").as_int(), Some(3));
    vm.shutdown();
}

#[test]
fn sieve_of_eratosthenes_with_streams() {
    // Figure 2's sieve: filters connected by synchronizing streams.  Each
    // filter is an eager thread (the paper's third variant).
    let (vm, i) = interp(1);
    ev(
        &i,
        r#"
(define (make-filter n input output)
  ;; Remove multiples of n from input; forward the rest.
  (fork-thread
    (lambda ()
      (let loop ((c (stream-cursor input)))
        (let ((x (cursor-next! c)))
          (cond ((eof-object? x) (stream-close! output))
                ((zero? (modulo x n)) (loop c))
                (else (stream-attach! output x) (loop c))))))))

(define (sieve limit)
  (let ((numbers (make-stream)))
    ;; Producer.
    (fork-thread
      (lambda ()
        (let loop ((i 2))
          (if (> i limit)
              (stream-close! numbers)
              (begin (stream-attach! numbers i) (loop (+ i 1)))))))
    ;; Chain of filters, built as primes are discovered.
    (let loop ((in numbers) (primes '()))
      (let ((x (cursor-next! (stream-cursor in))))
        (if (eof-object? x)
            (reverse primes)
            (let ((out (make-stream)))
              (make-filter x in out)
              ;; Skip x itself on the filtered stream.
              (loop out (cons x primes))))))))
"#,
    );
    let primes = ev(&i, "(sieve 30)");
    assert_eq!(primes.to_string(), "(2 3 5 7 11 13 17 19 23 29)");
    vm.shutdown();
}

#[test]
fn primes_with_futures_figure_3() {
    // Figure 3: result-parallel primality with futures; touching walks the
    // dependency chain, stealing delayed work.
    let (vm, i) = interp(1);
    ev(
        &i,
        r#"
(define (filter-prime n primes)
  (let loop ((j 3))
    (cond ((> (* j j) n) (cons n (touch primes)))
          ((zero? (modulo n j)) (touch primes))
          (else (loop (+ j 2))))))

(define (primes limit)
  (let loop ((i 3) (primes (future (list 2))))
    (if (> i limit)
        (touch primes)
        (loop (+ i 2) (delay (filter-prime i primes))))))
"#,
    );
    let v = ev(&i, "(reverse (primes 50))");
    assert_eq!(v.to_string(), "(2 3 5 7 11 13 17 19 23 29 31 37 41 43 47)");
    vm.shutdown();
}

#[test]
fn tuple_space_master_slave() {
    let (vm, i) = interp(2);
    ev(
        &i,
        r#"
(define ts (make-ts))
(define (slave)
  (fork-thread
    (lambda ()
      (let loop ()
        (let ((job (ts-get ts (list 'job '?))))
          (let ((n (car job)))
            (if (< n 0)
                'done
                (begin
                  (ts-put ts (list 'ack n (* n n)))
                  (loop)))))))))
"#,
    );
    let v = ev(
        &i,
        r#"
(let ((workers (list (slave) (slave))))
  ;; Put 10 jobs, collect 10 acks, then poison the workers.
  (let put-loop ((n 0))
    (when (< n 10) (ts-put ts (list 'job n)) (put-loop (+ n 1))))
  (let collect ((n 0) (total 0))
    (if (= n 10)
        (begin
          (ts-put ts (list 'job -1))
          (ts-put ts (list 'job -1))
          (wait-for-all workers)
          total)
        (let ((ack (ts-get ts (list 'ack n '?))))
          (collect (+ n 1) (+ total (car ack)))))))
"#,
    );
    assert_eq!(v.as_int(), Some((0..10i64).map(|n| n * n).sum()));
    vm.shutdown();
}

#[test]
fn tuple_space_spawn_active_tuples() {
    let (vm, i) = interp(1);
    let v = ev(
        &i,
        r#"
(let ((ts (make-ts)))
  (ts-spawn ts (list (lambda () (* 3 3)) (lambda () (* 4 4))))
  ;; Matching demands the threads' values.
  (let ((b (ts-get ts (list '? '?))))
    (+ (car b) (cadr b))))
"#,
    );
    assert_eq!(v.as_int(), Some(25));
    vm.shutdown();
}

#[test]
fn counter_idiom_get_put() {
    // The paper's (get TS [?x] (put TS [(+ x 1)])) increment.
    let (vm, i) = interp(2);
    let v = ev(
        &i,
        r#"
(let ((ts (make-ts)))
  (ts-put ts (list 0))
  (let ((workers
         (let loop ((k 0) (acc '()))
           (if (= k 4)
               acc
               (loop (+ k 1)
                     (cons (fork-thread
                            (lambda ()
                              (let loop ((n 0))
                                (when (< n 25)
                                  (let ((x (ts-get ts (list '?))))
                                    (ts-put ts (list (+ (car x) 1))))
                                  (loop (+ n 1))))))
                           acc))))))
    (wait-for-all workers)
    (car (ts-get ts (list '?)))))
"#,
    );
    assert_eq!(v.as_int(), Some(100));
    vm.shutdown();
}

#[test]
fn wait_for_one_speculative() {
    let (vm, i) = interp(1);
    let v = ev(
        &i,
        r#"
(let* ((slow (fork-thread (lambda () (sleep-ms 500) 'slow)))
       (fast (fork-thread (lambda () 'fast)))
       (winner (wait-for-one! (list slow fast))))
  (cadr winner))
"#,
    );
    assert_eq!(v, Value::sym("fast"));
    vm.shutdown();
}

#[test]
fn wait_for_all_barrier() {
    let (vm, i) = interp(1);
    let v = ev(
        &i,
        r#"
(let ((threads (map (lambda (n) (fork-thread (lambda () (* n 10))))
                    '(1 2 3 4))))
  (apply + (wait-for-all threads)))
"#,
    );
    assert_eq!(v.as_int(), Some(100));
    vm.shutdown();
}

#[test]
fn mutexes_protect_shared_state() {
    let (vm, i) = interp(2);
    let v = ev(
        &i,
        r#"
(let ((m (make-mutex 16 2))
      (ts (make-ts 'shared-var)))
  (ts-put ts (list 0))
  (let ((workers
         (map (lambda (k)
                (fork-thread
                 (lambda ()
                   (let loop ((n 0))
                     (when (< n 50)
                       (with-mutex m
                         (lambda ()
                           (let ((x (ts-get ts (list '?))))
                             (ts-put ts (list (+ (car x) 1))))))
                       (loop (+ n 1)))))))
              '(1 2))))
    (wait-for-all workers)
    (car (ts-rd ts (list '?)))))
"#,
    );
    assert_eq!(v.as_int(), Some(100));
    vm.shutdown();
}

#[test]
fn barriers_align_phases() {
    let (vm, i) = interp(1);
    let v = ev(
        &i,
        r#"
(let ((b (make-barrier 3))
      (ts (make-ts 'queue)))
  (let ((workers
         (map (lambda (k)
                (fork-thread
                 (lambda ()
                   (ts-put ts (list 'phase1 k))
                   (barrier-arrive b)
                   (ts-put ts (list 'phase2 k)))))
              '(0 1 2))))
    (wait-for-all workers)
    ;; All phase1 tuples must precede all phase2 tuples in queue order.
    (let loop ((seen1 0) (ok #t))
      (let ((x (ts-try-get ts (list '? '?))))
        (if x
            (if (eq? (car x) 'phase1)
                (loop (+ seen1 1) (and ok (< seen1 3)))
                (loop seen1 (and ok (= seen1 3))))
            (if ok 'ordered 'interleaved))))))
"#,
    );
    assert_eq!(v, Value::sym("ordered"));
    vm.shutdown();
}

#[test]
fn preemption_interleaves_scheme_threads() {
    let (vm, i) = interp(1);
    // Two non-yielding spinners on one VP; the checkpoint window plus the
    // timekeeper preempt them.
    let v = ev(
        &i,
        r#"
(let ((ts (make-ts 'shared-var)))
  (ts-put ts (list 'go))
  (let ((t1 (fork-thread (lambda () (let loop ((n 0)) (if (= n 60000) 'a (loop (+ n 1)))))))
        (t2 (fork-thread (lambda () (let loop ((n 0)) (if (= n 60000) 'b (loop (+ n 1))))))))
    (wait-for-all (list t1 t2))
    (substrate-counter 'preemptions)))
"#,
    );
    assert!(v.as_int().unwrap() > 0, "expected preemptions, got {v}");
    vm.shutdown();
}

#[test]
fn fluids_are_inherited_per_thread() {
    let (vm, i) = interp(1);
    let v = ev(
        &i,
        r#"
(let ((f (make-fluid 'parent)))
  (fluid-set! f 'before-fork)
  (let ((child (fork-thread (lambda ()
                              (let ((inherited (fluid-ref f)))
                                (fluid-set! f 'child-own)
                                inherited)))))
    (let ((got (thread-wait child)))
      ;; The child's mutation is not visible here (dynamic env is
      ;; per-thread, inherited at fork).
      (list got (fluid-ref f)))))
"#,
    );
    assert_eq!(v.to_string(), "(before-fork before-fork)");
    vm.shutdown();
}

#[test]
fn terminate_and_kill_group() {
    let (vm, i) = interp(1);
    let v = ev(
        &i,
        r#"
(let ((spinner (fork-thread (lambda () (let loop () (yield-processor) (loop))))))
  (thread-terminate spinner 'killed)
  (thread-wait spinner))
"#,
    );
    assert_eq!(v, Value::sym("killed"));
    vm.shutdown();
}

#[test]
fn explicit_vp_placement() {
    // Pinning is only meaningful under a non-migrating policy: the default
    // migrating policy may (correctly) move the thread to an idle VP.
    let vm = VmBuilder::new()
        .vps(3)
        .policy(|_| sting_core::policies::local_fifo().boxed())
        .build();
    let i = Interp::new(vm.clone());
    let v = ev(
        &i,
        r#"
(let ((t (fork-thread (lambda () (current-vp)) 2)))
  (list (vp-count) (thread-wait t)))
"#,
    );
    assert_eq!(v.to_string(), "(3 2)");
    vm.shutdown();
}

#[test]
fn without_preemption_runs_body() {
    let (vm, i) = interp(1);
    let v = ev(&i, "(without-preemption (lambda () (+ 20 22)))");
    assert_eq!(v.as_int(), Some(42));
    vm.shutdown();
}

#[test]
fn yield_processor_from_scheme() {
    let (vm, i) = interp(1);
    let v = ev(
        &i,
        "(let ((t (fork-thread (lambda () 1)))) (yield-processor) (thread-wait t))",
    );
    assert_eq!(v.as_int(), Some(1));
    vm.shutdown();
}

#[test]
fn thread_raise_bang_from_scheme() {
    let (vm, i) = interp(1);
    let v = ev(
        &i,
        r#"
(let ((victim (fork-thread (lambda () (let loop () (yield-processor) (loop))))))
  (thread-raise! victim 'poked)
  (try (thread-wait victim) (catch (e) (list 'caught e))))
"#,
    );
    assert_eq!(v.to_string(), "(caught poked)");
    vm.shutdown();
}

#[test]
fn prelude_helpers_available() {
    let (vm, i) = interp(2);
    assert_eq!(ev(&i, "(sum (iota 10))").as_int(), Some(45));
    assert_eq!(
        ev(&i, "(parallel-map (lambda (x) (* 2 x)) '(1 2 3))").to_string(),
        "(2 4 6)"
    );
    assert_eq!(ev(&i, "(every odd? '(1 3 5))"), Value::Bool(true));
    assert_eq!(ev(&i, "(any even? '(1 3 5))"), Value::Bool(false));
    assert_eq!(ev(&i, "(take '(1 2 3 4) 2)").to_string(), "(1 2)");
    assert_eq!(ev(&i, "(drop '(1 2 3 4) 2)").to_string(), "(3 4)");
    assert_eq!(
        ev(&i, "(force-promise (make-promise (lambda () 11)))").as_int(),
        Some(11)
    );
    vm.shutdown();
}

#[test]
fn prelude_sort_and_list_utilities() {
    let (vm, i) = interp(1);
    assert_eq!(
        ev(&i, "(list-sort < '(5 2 8 1 9 3 3 0))").to_string(),
        "(0 1 2 3 3 5 8 9)"
    );
    assert_eq!(ev(&i, "(list-sort < '())").to_string(), "()");
    assert_eq!(ev(&i, "(list-sort > '(1 2 3))").to_string(), "(3 2 1)");
    assert_eq!(ev(&i, "(remove odd? '(1 2 3 4))").to_string(), "(2 4)");
    assert_eq!(ev(&i, "(delete 2 '(1 2 3 2))").to_string(), "(1 3)");
    assert_eq!(ev(&i, "(list-index even? '(1 3 4 5))").as_int(), Some(2));
    assert_eq!(ev(&i, "(list-index even? '(1 3 5))"), Value::Bool(false));
    assert_eq!(
        ev(&i, "(append-map (lambda (x) (list x x)) '(1 2))").to_string(),
        "(1 1 2 2)"
    );
    assert_eq!(ev(&i, "(count odd? '(1 2 3 4 5))").as_int(), Some(3));
    // Sorting in parallel chunks, then merging — everything composes.
    assert_eq!(
        ev(
            &i,
            "(let ((halves (parallel-map (lambda (l) (list-sort < l))
                                         '((9 1 5) (8 2 0)))))
               (merge < (car halves) (cadr halves)))"
        )
        .to_string(),
        "(0 1 2 5 8 9)"
    );
    vm.shutdown();
}

#[test]
fn trace_prims_record_dump_and_export() {
    let (vm, i) = interp(1);
    ev(&i, "(trace-start)");
    assert_eq!(ev(&i, "(touch (delay (* 6 7)))").as_int(), Some(42));
    let n = ev(&i, "(trace-count)").as_int().unwrap();
    assert!(n > 0, "recording enabled: events should accumulate");
    let dump = ev(&i, "(trace-dump)");
    let text = dump.as_str().expect("trace-dump returns a string");
    assert!(text.contains("steal"), "delayed touch shows up as a steal");
    assert!(text.contains("fork"), "thread creation is recorded");
    // Export valid chrome JSON to a temp file and look inside.
    let path = std::env::temp_dir().join(format!("sting-trace-{}.json", std::process::id()));
    let exported = ev(&i, &format!("(trace-export \"{}\")", path.display()))
        .as_int()
        .unwrap();
    assert!(exported >= n, "export covers everything recorded so far");
    let json = std::fs::read_to_string(&path).unwrap();
    let _ = std::fs::remove_file(&path);
    assert!(json.starts_with('[') && json.trim_end().ends_with(']'));
    assert!(json.contains("\"steal"));
    // The invariant linter is reachable from Scheme and this run is clean.
    let audit = ev(&i, "(trace-audit)");
    let report = audit.as_str().expect("trace-audit returns a string");
    assert!(report.starts_with("trace audit: 0 finding(s)"), "{report}");
    // trace-stop freezes the recording.
    ev(&i, "(trace-stop)");
    let frozen = ev(&i, "(trace-count)").as_int().unwrap();
    ev(&i, "(touch (delay 1))");
    assert_eq!(ev(&i, "(trace-count)").as_int().unwrap(), frozen);
    vm.shutdown();
}

#[test]
fn timed_blocking_forms_return_false_or_timeout() {
    let (vm, i) = interp(1);
    // thread-wait with a deadline: #f while running, the value once done.
    ev(
        &i,
        "(define slow (fork-thread (lambda () (sleep-ms 100) 'done)))",
    );
    assert_eq!(ev(&i, "(thread-wait slow 5)"), Value::Bool(false));
    assert_eq!(ev(&i, "(thread-wait slow)"), Value::sym("done"));
    // mutex-acquire: #f against a held lock, #t (still held!) when free.
    ev(&i, "(define m (make-mutex))");
    ev(&i, "(mutex-acquire m)");
    assert_eq!(ev(&i, "(mutex-acquire m 5)"), Value::Bool(false));
    ev(&i, "(mutex-release m)");
    assert_eq!(ev(&i, "(mutex-acquire m 5)"), Value::Bool(true));
    ev(&i, "(mutex-release m)");
    // semaphore-acquire: #f with no permits, #t after a release.
    ev(&i, "(define s (make-semaphore 0))");
    assert_eq!(ev(&i, "(semaphore-acquire s 5)"), Value::Bool(false));
    ev(&i, "(semaphore-release s)");
    assert_eq!(ev(&i, "(semaphore-acquire s 5)"), Value::Bool(true));
    // barrier-arrive: the arrival is withdrawn on timeout, so a later
    // full cycle still completes (which side is leader is a race).
    ev(&i, "(define b (make-barrier 2))");
    assert_eq!(ev(&i, "(barrier-arrive b 5)"), Value::sym("timeout"));
    ev(
        &i,
        "(define party (fork-thread (lambda () (barrier-arrive b))))",
    );
    assert_ne!(ev(&i, "(barrier-arrive b 1000)"), Value::sym("timeout"));
    ev(&i, "(thread-wait party)");
    // cursor-next!: `timeout` without advancing; the element is still
    // there for the retry.
    ev(&i, "(define st (make-stream))");
    ev(&i, "(define c (stream-cursor st))");
    assert_eq!(ev(&i, "(cursor-next! c 5)"), Value::sym("timeout"));
    ev(&i, "(stream-attach! st 'x)");
    assert_eq!(ev(&i, "(cursor-next! c 1000)"), Value::sym("x"));
    // ts-get / ts-rd: #f on timeout, bindings once a tuple arrives.
    ev(&i, "(define ts (make-ts))");
    assert_eq!(ev(&i, "(ts-get ts (list '?) 5)"), Value::Bool(false));
    assert_eq!(ev(&i, "(ts-rd ts (list '?) 5)"), Value::Bool(false));
    ev(&i, "(ts-put ts (list 42))");
    assert_eq!(ev(&i, "(car (ts-get ts (list '?) 1000))"), Value::Int(42));
    vm.shutdown();
}

#[test]
fn tcp_echo_between_scheme_threads() {
    let (vm, i) = interp(1);
    // Server and client are both Scheme-level STING threads on one VP;
    // every socket op parks only its own thread.
    let v = ev(
        &i,
        "(let* ((l (tcp-listen 0))
                (port (tcp-local-port l))
                (server (fork-thread
                          (lambda ()
                            (let* ((s (tcp-accept l))
                                   (msg (tcp-read s 16)))
                              (tcp-write s msg)
                              (tcp-close s)
                              'served))))
                (c (tcp-connect port)))
           (tcp-write c \"ping\")
           (let ((echoed (tcp-read c 16)))
             (thread-wait server)
             echoed))",
    );
    assert_eq!(v, Value::Str("ping".into()));
    vm.shutdown();
}

#[test]
fn vm_io_stats_reports_backend_and_counters() {
    let (vm, i) = interp(1);
    // Before any socket I/O the driver has not built its reactor.
    assert_eq!(ev(&i, "(car (vm-io-stats))"), Value::sym("unstarted"));
    // One echo round trip forces the driver up; afterwards the stats name
    // a real backend and show kernel work plus at least one wake.
    ev(
        &i,
        "(let* ((l (tcp-listen 0))
                (port (tcp-local-port l))
                (server (fork-thread
                          (lambda ()
                            (let* ((s (tcp-accept l))
                                   (msg (tcp-read s 16)))
                              (tcp-write s msg)
                              (tcp-close s)))))
                (c (tcp-connect port)))
           (tcp-write c \"ping\")
           (tcp-read c 16)
           (thread-wait server))",
    );
    let stats = ev(&i, "(vm-io-stats)");
    let items: Vec<Value> = stats.list_iter().cloned().collect();
    assert_eq!(items.len(), 3, "stats should be (backend syscalls wakes)");
    assert!(
        items[0] == Value::sym("epoll") || items[0] == Value::sym("uring"),
        "unexpected backend: {:?}",
        items[0]
    );
    assert!(items[1].as_int().unwrap() > 0, "no syscalls counted");
    assert!(items[2].as_int().unwrap() > 0, "no wakes counted");
    vm.shutdown();
}

#[test]
fn tcp_deadlines_surface_as_timeout_symbol() {
    let (vm, i) = interp(1);
    let v = ev(
        &i,
        "(let ((l (tcp-listen 0)))
           (tcp-accept l 25))",
    );
    assert_eq!(v, Value::sym("timeout"));
    let v = ev(
        &i,
        "(let* ((l (tcp-listen 0))
                (c (tcp-connect (tcp-local-port l)))
                (s (tcp-accept l)))
           (tcp-read s 8 25))",
    );
    assert_eq!(v, Value::sym("timeout"));
    vm.shutdown();
}

#[test]
fn channels_send_recv_across_threads() {
    let (vm, i) = interp(2);
    // A producer feeds ten ints through a bounded channel; the consumer
    // sums them and sees eof after the close.
    let v = ev(
        &i,
        "(define ch (make-channel 4))
         (define producer
           (fork-thread
            (lambda ()
              (let loop ((n 1))
                (if (<= n 10)
                    (begin (channel-send ch n) (loop (+ n 1)))
                    (channel-close ch))))))
         (let loop ((total 0))
           (let ((v (channel-recv ch)))
             (if (eof-object? v)
                 (begin (thread-wait producer) total)
                 (loop (+ total v)))))",
    );
    assert_eq!(v.as_int(), Some(55));
    vm.shutdown();
}

#[test]
fn channel_try_recv_and_timeout() {
    let (vm, i) = interp(1);
    ev(&i, "(define ch (make-channel))");
    // Nothing queued: try-recv is #f, a timed recv reports 'timeout.
    assert_eq!(ev(&i, "(channel-try-recv ch)"), Value::Bool(false));
    assert_eq!(ev(&i, "(channel-recv ch 5)"), Value::sym("timeout"));
    ev(&i, "(channel-send ch 'ping)");
    assert_eq!(ev(&i, "(channel-try-recv ch)"), Value::sym("ping"));
    // Receiving from a closed channel yields eof, not an error.
    ev(&i, "(channel-close ch)");
    assert_eq!(ev(&i, "(eof-object? (channel-recv ch))"), Value::Bool(true));
    vm.shutdown();
}

#[test]
fn fleet_sharded_tuple_space_from_scheme() {
    // A fleet of 2 VM shards driven entirely from Scheme: master/slave
    // over a sharded tuple space, shard-aware metrics, fleet-wide audit.
    let (vm, i) = interp(1);
    ev(&i, "(define fl (fleet-spawn 2))");
    assert_eq!(ev(&i, "(fleet-size fl)").as_int(), Some(2));
    ev(&i, "(define sts (fleet-ts fl))");
    let v = ev(
        &i,
        r#"
(let ((worker
       (fleet-fork fl 0
         (lambda ()
           (let loop ((acc 0))
             (let ((job (fleet-ts-get sts (list 'job '?))))
               (let ((n (car job)))
                 (if (< n 0)
                     acc
                     (begin
                       (fleet-ts-put sts (list 'ack n (* n n)))
                       (loop (+ acc 1))))))))))
      (prober (fleet-fork fl 1 (lambda () (current-shard)))))
  ;; Deposits from the host VM take the off-fleet direct path.
  (let put-loop ((n 0))
    (when (< n 8) (fleet-ts-put sts (list 'job n)) (put-loop (+ n 1))))
  (let collect ((n 0) (total 0))
    (if (= n 8)
        (begin
          (fleet-ts-put sts (list 'job -1))
          (thread-wait worker)
          (+ total (* 1000 (thread-wait prober))))
        (let ((ack (fleet-ts-get sts (list 'ack n '?))))
          (collect (+ n 1) (+ total (car ack)))))))
"#,
    );
    let expect: i64 = (0..8i64).map(|n| n * n).sum::<i64>() + 1000;
    assert_eq!(v.as_int(), Some(expect));
    // Shard-aware metrics: one (shard rows) entry per shard.
    assert_eq!(ev(&i, "(length (vm-metrics fl))").as_int(), Some(2));
    let report = format!("{}", ev(&i, "(fleet-audit fl)"));
    assert!(
        report.contains("finding"),
        "unexpected audit shape: {report}"
    );
    ev(&i, "(fleet-shutdown fl)");
    vm.shutdown();
}
