//! Property tests for the language front end and arithmetic semantics.

use proptest::prelude::*;
use sting_core::VmBuilder;
use sting_scheme::reader::{read_all, read_one};
use sting_scheme::{Interp, Sexp};

fn arb_sexp() -> impl Strategy<Value = Sexp> {
    let leaf = prop_oneof![
        any::<i32>().prop_map(|i| Sexp::Int(i64::from(i))),
        any::<bool>().prop_map(Sexp::Bool),
        "[a-z][a-z0-9?!*-]{0,8}".prop_map(|s| Sexp::sym(&s)),
        "[ -~&&[^\"\\\\]]{0,10}".prop_map(Sexp::Str),
        prop_oneof![Just('a'), Just('Z'), Just('0'), Just(' '), Just('\n')].prop_map(Sexp::Char),
    ];
    leaf.prop_recursive(4, 24, 5, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..5).prop_map(Sexp::list),
            prop::collection::vec(inner, 0..4).prop_map(Sexp::Vector),
        ]
    })
}

proptest! {
    /// print ∘ read = identity on the datum level.
    #[test]
    fn reader_printer_roundtrip(s in arb_sexp()) {
        let text = s.to_string();
        let back = read_one(&text).expect("printed datum reads back");
        prop_assert_eq!(back, s);
    }

    #[test]
    fn read_all_counts_top_level_forms(items in prop::collection::vec(arb_sexp(), 0..5)) {
        let text: Vec<String> = items.iter().map(|s| s.to_string()).collect();
        let joined = text.join(" \n ");
        let back = read_all(&joined).expect("reads back");
        prop_assert_eq!(back.len(), items.len());
    }
}

#[test]
fn quoted_random_data_evaluates_to_itself() {
    // Deterministic mini-fuzz through the whole pipeline: quote a datum,
    // evaluate it, print it, compare with the source datum's printing.
    let vm = VmBuilder::new().vps(1).build();
    let interp = Interp::new(vm.clone());
    let cases = [
        "(1 2 (3 #(4 \"five\") b) . c)",
        "#(#t #f #\\a (nested list))",
        "(quote still-quoted)",
        "()",
        "(((((deep)))))",
    ];
    for c in cases {
        let src = format!("'{c}");
        let v = interp.eval(&src).unwrap();
        let reread = read_one(c).unwrap();
        assert_eq!(v.to_string(), reread.to_string(), "case {c}");
    }
    vm.shutdown();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Scheme integer arithmetic agrees with Rust's (within fixnum range).
    #[test]
    fn arithmetic_agrees_with_rust(a in -10_000i64..10_000, b in -10_000i64..10_000) {
        let vm = VmBuilder::new().vps(1).build();
        let interp = Interp::bare(vm.clone());
        let v = interp.eval(&format!("(+ (* {a} {b}) (- {a} {b}))")).unwrap();
        prop_assert_eq!(v.as_int(), Some(a * b + (a - b)));
        if b != 0 {
            let q = interp.eval(&format!("(quotient {a} {b})")).unwrap();
            prop_assert_eq!(q.as_int(), Some(a / b));
            let r = interp.eval(&format!("(remainder {a} {b})")).unwrap();
            prop_assert_eq!(r.as_int(), Some(a % b));
            let m = interp.eval(&format!("(modulo {a} {b})")).unwrap();
            prop_assert_eq!(m.as_int(), Some(a.rem_euclid(b.abs()) + if b < 0 && a.rem_euclid(b.abs()) != 0 { b } else { 0 }));
        }
        vm.shutdown();
    }

    /// reverse ∘ reverse = identity, end to end through the interpreter.
    #[test]
    fn reverse_involution(xs in prop::collection::vec(-100i64..100, 0..12)) {
        let vm = VmBuilder::new().vps(1).build();
        let interp = Interp::bare(vm.clone());
        let lst = xs.iter().map(i64::to_string).collect::<Vec<_>>().join(" ");
        let v = interp.eval(&format!("(reverse (reverse '({lst})))")).unwrap();
        let back: Vec<i64> = v.list_iter().map(|x| x.as_int().unwrap()).collect();
        prop_assert_eq!(back, xs);
        vm.shutdown();
    }
}
