//! End-to-end language tests: evaluation, closures, recursion, tail calls,
//! GC pressure, exceptions, and data structures.

use std::sync::Arc;
use sting_core::VmBuilder;
use sting_scheme::{Interp, SchemeError};
use sting_value::Value;

fn interp() -> (Arc<sting_core::Vm>, Interp) {
    let vm = VmBuilder::new().vps(1).build();
    let i = Interp::new(vm.clone());
    (vm, i)
}

fn ev(i: &Interp, src: &str) -> Value {
    match i.eval(src) {
        Ok(v) => v,
        Err(e) => panic!("eval {src:?} failed: {e}"),
    }
}

#[test]
fn literals_and_arithmetic() {
    let (vm, i) = interp();
    assert_eq!(ev(&i, "42").as_int(), Some(42));
    assert_eq!(ev(&i, "(+ 1 2 3)").as_int(), Some(6));
    assert_eq!(ev(&i, "(- 10 4 1)").as_int(), Some(5));
    assert_eq!(ev(&i, "(* 2 3 4)").as_int(), Some(24));
    assert_eq!(ev(&i, "(/ 10 4)").as_f64(), Some(2.5));
    assert_eq!(ev(&i, "(/ 10 2)").as_int(), Some(5));
    assert_eq!(ev(&i, "(quotient 7 2)").as_int(), Some(3));
    assert_eq!(ev(&i, "(remainder 7 2)").as_int(), Some(1));
    assert_eq!(ev(&i, "(modulo -7 2)").as_int(), Some(1));
    assert_eq!(ev(&i, "(modulo 7 -2)").as_int(), Some(-1));
    assert_eq!(ev(&i, "(+ 1.5 2)").as_f64(), Some(3.5));
    assert_eq!(ev(&i, "(expt 2 10)").as_int(), Some(1024));
    assert_eq!(ev(&i, "(max 1 5 3)").as_int(), Some(5));
    assert_eq!(ev(&i, "(min 4 2 8)").as_int(), Some(2));
    assert_eq!(ev(&i, "(abs -9)").as_int(), Some(9));
    vm.shutdown();
}

#[test]
fn comparisons_and_predicates() {
    let (vm, i) = interp();
    assert_eq!(ev(&i, "(< 1 2 3)"), Value::Bool(true));
    assert_eq!(ev(&i, "(< 1 3 2)"), Value::Bool(false));
    assert_eq!(ev(&i, "(= 2 2 2)"), Value::Bool(true));
    assert_eq!(ev(&i, "(>= 3 3 2)"), Value::Bool(true));
    assert_eq!(ev(&i, "(zero? 0)"), Value::Bool(true));
    assert_eq!(ev(&i, "(even? 4)"), Value::Bool(true));
    assert_eq!(ev(&i, "(odd? 4)"), Value::Bool(false));
    assert_eq!(ev(&i, "(null? '())"), Value::Bool(true));
    assert_eq!(ev(&i, "(pair? '(1))"), Value::Bool(true));
    assert_eq!(ev(&i, "(symbol? 'a)"), Value::Bool(true));
    assert_eq!(ev(&i, "(string? \"s\")"), Value::Bool(true));
    assert_eq!(ev(&i, "(procedure? car)"), Value::Bool(true));
    assert_eq!(ev(&i, "(procedure? (lambda (x) x))"), Value::Bool(true));
    assert_eq!(ev(&i, "(procedure? 3)"), Value::Bool(false));
    vm.shutdown();
}

#[test]
fn define_lambda_closures() {
    let (vm, i) = interp();
    ev(&i, "(define (add a b) (+ a b))");
    assert_eq!(ev(&i, "(add 2 3)").as_int(), Some(5));
    ev(&i, "(define (make-adder n) (lambda (x) (+ x n)))");
    ev(&i, "(define add10 (make-adder 10))");
    assert_eq!(ev(&i, "(add10 5)").as_int(), Some(15));
    // Closures share mutable state through their environment.
    ev(
        &i,
        "(define (make-counter) (let ((n 0)) (lambda () (set! n (+ n 1)) n)))",
    );
    ev(&i, "(define c (make-counter))");
    assert_eq!(ev(&i, "(c)").as_int(), Some(1));
    assert_eq!(ev(&i, "(c)").as_int(), Some(2));
    vm.shutdown();
}

#[test]
fn recursion_and_tail_calls() {
    let (vm, i) = interp();
    ev(&i, "(define (fact n) (if (= n 0) 1 (* n (fact (- n 1)))))");
    assert_eq!(ev(&i, "(fact 10)").as_int(), Some(3_628_800));
    // Deep tail recursion must not overflow anything.
    ev(
        &i,
        "(define (count n acc) (if (= n 0) acc (count (- n 1) (+ acc 1))))",
    );
    assert_eq!(ev(&i, "(count 1000000 0)").as_int(), Some(1_000_000));
    // Named let.
    assert_eq!(
        ev(
            &i,
            "(let loop ((n 5) (acc 1)) (if (= n 0) acc (loop (- n 1) (* acc n))))"
        )
        .as_int(),
        Some(120)
    );
    vm.shutdown();
}

#[test]
fn let_forms() {
    let (vm, i) = interp();
    assert_eq!(ev(&i, "(let ((a 1) (b 2)) (+ a b))").as_int(), Some(3));
    assert_eq!(ev(&i, "(let* ((a 1) (b (+ a 1))) b)").as_int(), Some(2));
    assert_eq!(
        ev(&i, "(letrec ((even? (lambda (n) (if (= n 0) #t (odd? (- n 1))))) (odd? (lambda (n) (if (= n 0) #f (even? (- n 1)))))) (even? 100))"),
        Value::Bool(true)
    );
    vm.shutdown();
}

#[test]
fn conditionals() {
    let (vm, i) = interp();
    assert_eq!(ev(&i, "(if #f 1 2)").as_int(), Some(2));
    assert_eq!(ev(&i, "(if 0 1 2)").as_int(), Some(1), "0 is truthy");
    assert_eq!(ev(&i, "(cond (#f 1) (#t 2) (else 3))").as_int(), Some(2));
    assert_eq!(ev(&i, "(cond (#f 1) (else 3))").as_int(), Some(3));
    assert_eq!(ev(&i, "(cond (42))").as_int(), Some(42));
    assert_eq!(
        ev(
            &i,
            "(case 2 ((1) 'one) ((2 3) 'two-or-three) (else 'other))"
        ),
        Value::sym("two-or-three")
    );
    assert_eq!(
        ev(&i, "(case 9 ((1) 'one) (else 'other))"),
        Value::sym("other")
    );
    assert_eq!(ev(&i, "(and 1 2 3)").as_int(), Some(3));
    assert_eq!(ev(&i, "(and 1 #f 3)"), Value::Bool(false));
    assert_eq!(ev(&i, "(or #f 2)").as_int(), Some(2));
    assert_eq!(ev(&i, "(or #f #f)"), Value::Bool(false));
    assert_eq!(ev(&i, "(when #t 1 2)").as_int(), Some(2));
    assert_eq!(ev(&i, "(unless #t 1)"), Value::Bool(false));
    vm.shutdown();
}

#[test]
fn lists_and_pairs() {
    let (vm, i) = interp();
    assert_eq!(ev(&i, "(car '(1 2 3))").as_int(), Some(1));
    assert_eq!(ev(&i, "(cadr '(1 2 3))").as_int(), Some(2));
    assert_eq!(ev(&i, "(length '(a b c))").as_int(), Some(3));
    assert_eq!(
        ev(&i, "(append '(1 2) '(3) '(4 5))").to_string(),
        "(1 2 3 4 5)"
    );
    assert_eq!(ev(&i, "(reverse '(1 2 3))").to_string(), "(3 2 1)");
    assert_eq!(ev(&i, "(list-ref '(a b c) 1)"), Value::sym("b"));
    assert_eq!(ev(&i, "(member 2 '(1 2 3))").to_string(), "(2 3)");
    assert_eq!(ev(&i, "(assq 'b '((a 1) (b 2)))").to_string(), "(b 2)");
    assert_eq!(
        ev(&i, "(map (lambda (x) (* x x)) '(1 2 3))").to_string(),
        "(1 4 9)"
    );
    assert_eq!(
        ev(&i, "(map + '(1 2 3) '(10 20 30))").to_string(),
        "(11 22 33)"
    );
    assert_eq!(ev(&i, "(filter odd? '(1 2 3 4 5))").to_string(), "(1 3 5)");
    assert_eq!(ev(&i, "(apply + 1 2 '(3 4))").as_int(), Some(10));
    // Mutation (within one toplevel form; globals are value snapshots —
    // see DESIGN.md on copy-on-share).
    assert_eq!(
        ev(&i, "(let ((p (cons 1 2))) (set-car! p 10) (car p))").as_int(),
        Some(10)
    );
    vm.shutdown();
}

#[test]
fn vectors_and_strings() {
    let (vm, i) = interp();
    assert_eq!(
        ev(&i, "(vector-length (make-vector 5 0))").as_int(),
        Some(5)
    );
    assert_eq!(
        ev(
            &i,
            "(let ((v (vector 1 2 3))) (vector-set! v 1 99) (vector-ref v 1))"
        )
        .as_int(),
        Some(99)
    );
    assert_eq!(ev(&i, "(vector->list #(1 2))").to_string(), "(1 2)");
    assert_eq!(ev(&i, "(string-length \"hello\")").as_int(), Some(5));
    assert_eq!(
        ev(&i, "(string-append \"foo\" \"bar\")").as_str(),
        Some("foobar")
    );
    assert_eq!(ev(&i, "(substring \"hello\" 1 3)").as_str(), Some("el"));
    assert_eq!(ev(&i, "(string=? \"a\" \"a\")"), Value::Bool(true));
    assert_eq!(ev(&i, "(string->symbol \"wee\")"), Value::sym("wee"));
    assert_eq!(ev(&i, "(symbol->string 'wee)").as_str(), Some("wee"));
    assert_eq!(ev(&i, "(string->number \"42\")").as_int(), Some(42));
    assert_eq!(ev(&i, "(number->string 42)").as_str(), Some("42"));
    assert_eq!(ev(&i, "(char->integer #\\A)").as_int(), Some(65));
    vm.shutdown();
}

#[test]
fn equality() {
    let (vm, i) = interp();
    assert_eq!(ev(&i, "(eq? 'a 'a)"), Value::Bool(true));
    assert_eq!(ev(&i, "(eq? '(1) '(1))"), Value::Bool(false));
    assert_eq!(ev(&i, "(equal? '(1 (2)) '(1 (2)))"), Value::Bool(true));
    assert_eq!(ev(&i, "(equal? \"ab\" \"ab\")"), Value::Bool(true));
    assert_eq!(ev(&i, "(let ((x '(1))) (eq? x x))"), Value::Bool(true));
    vm.shutdown();
}

#[test]
fn quasiquote() {
    let (vm, i) = interp();
    assert_eq!(ev(&i, "`(1 2 ,(+ 1 2))").to_string(), "(1 2 3)");
    assert_eq!(ev(&i, "`(1 ,@(list 2 3) 4)").to_string(), "(1 2 3 4)");
    assert_eq!(ev(&i, "`a"), Value::sym("a"));
    vm.shutdown();
}

#[test]
fn exceptions() {
    let (vm, i) = interp();
    // try/catch.
    assert_eq!(
        ev(&i, "(try (+ 1 (raise 'boom)) (catch (e) e))"),
        Value::sym("boom")
    );
    assert_eq!(ev(&i, "(try 42 (catch (e) 'unused))").as_int(), Some(42));
    // Uncaught exceptions surface as SchemeError::Raised.
    match i.eval("(raise 'oops)") {
        Err(SchemeError::Raised(v)) => assert_eq!(v, Value::sym("oops")),
        other => panic!("expected raise, got {other:?}"),
    }
    // error builds a structured exception value.
    match i.eval("(error \"bad thing\" 42)") {
        Err(SchemeError::Raised(v)) => {
            let items: Vec<_> = v.list_iter().cloned().collect();
            assert_eq!(items[0], Value::sym("error"));
            assert_eq!(items[1].as_str(), Some("bad thing"));
            assert_eq!(items[2].as_int(), Some(42));
        }
        other => panic!("expected raise, got {other:?}"),
    }
    // Handler can re-raise.
    match i.eval("(try (raise 1) (catch (e) (raise (+ e 1))))") {
        Err(SchemeError::Raised(v)) => assert_eq!(v.as_int(), Some(2)),
        other => panic!("{other:?}"),
    }
    vm.shutdown();
}

#[test]
fn runtime_errors_are_raised() {
    let (vm, i) = interp();
    assert!(i.eval("(car 5)").is_err());
    assert!(i.eval("(undefined-proc 1)").is_err());
    assert!(i.eval("(vector-ref (vector 1) 5)").is_err());
    assert!(i.eval("(/ 1 0)").is_err());
    assert!(i.eval("((lambda (x) x) 1 2)").is_err(), "arity");
    // But they are catchable.
    assert_eq!(
        ev(&i, "(try (car 5) (catch (e) 'caught))"),
        Value::sym("caught")
    );
    vm.shutdown();
}

#[test]
fn runtime_errors_cite_source_positions() {
    let (vm, i) = interp();
    // The offending call starts at line 2, column 3.
    let err = i
        .eval("(define (id x) x)\n  (id 1 2)")
        .expect_err("arity mismatch")
        .to_string();
    assert!(err.contains("(at 2:3)"), "no span in: {err}");
    let err = i
        .eval("\n (no-such-fn)")
        .expect_err("unbound variable")
        .to_string();
    assert!(err.contains("(at 2:2)"), "no span in: {err}");
    vm.shutdown();
}

#[test]
fn variadic_procedures() {
    let (vm, i) = interp();
    ev(&i, "(define (f . args) (length args))");
    assert_eq!(ev(&i, "(f 1 2 3)").as_int(), Some(3));
    assert_eq!(ev(&i, "(f)").as_int(), Some(0));
    ev(&i, "(define (g a . rest) (cons a rest))");
    assert_eq!(ev(&i, "(g 1 2 3)").to_string(), "(1 2 3)");
    vm.shutdown();
}

#[test]
fn internal_defines() {
    let (vm, i) = interp();
    assert_eq!(
        ev(
            &i,
            "(define (h x) (define y 10) (define (inner) (* x y)) (inner)) (h 4)"
        )
        .as_int(),
        Some(40)
    );
    vm.shutdown();
}

#[test]
fn do_and_while_loops() {
    let (vm, i) = interp();
    assert_eq!(
        ev(&i, "(do ((i 0 (+ i 1)) (acc 0 (+ acc i))) ((= i 5) acc))").as_int(),
        Some(10)
    );
    assert_eq!(
        ev(&i, "(let ((n 0)) (while (< n 5) (set! n (+ n 1))) n)").as_int(),
        Some(5)
    );
    vm.shutdown();
}

#[test]
fn gc_pressure_deep_structures() {
    let (vm, i) = interp();
    // Allocate heavily: build and sum a long list; many nursery collections.
    ev(&i, "(define (iota n) (let loop ((i 0) (acc '())) (if (= i n) (reverse acc) (loop (+ i 1) (cons i acc)))))");
    assert_eq!(
        ev(&i, "(apply + (iota 10000))").as_int(),
        Some((0..10000i64).sum())
    );
    // gc-stats: (minor major allocated copied promotions)
    let stats = ev(&i, "(begin (iota 50000) (gc-stats))");
    let minor = stats.list_iter().next().unwrap().as_int().unwrap();
    assert!(minor > 0, "expected minor collections, stats = {stats}");
    vm.shutdown();
}

#[test]
fn higher_order_and_y_combinator_style() {
    let (vm, i) = interp();
    ev(&i, "(define (compose f g) (lambda (x) (f (g x))))");
    ev(&i, "(define inc (lambda (x) (+ x 1)))");
    assert_eq!(ev(&i, "((compose inc inc) 5)").as_int(), Some(7));
    ev(
        &i,
        "(define (fold f init lst) (if (null? lst) init (fold f (f init (car lst)) (cdr lst))))",
    );
    assert_eq!(ev(&i, "(fold + 0 '(1 2 3 4))").as_int(), Some(10));
    vm.shutdown();
}

#[test]
fn multiple_toplevel_forms_share_globals() {
    let (vm, i) = interp();
    let v = ev(&i, "(define a 1) (define b 2) (+ a b)");
    assert_eq!(v.as_int(), Some(3));
    // Later evals see earlier definitions.
    assert_eq!(ev(&i, "(+ a b)").as_int(), Some(3));
    ev(&i, "(set! a 100)");
    assert_eq!(ev(&i, "a").as_int(), Some(100));
    vm.shutdown();
}

#[test]
fn fibonacci_exercises_the_machine() {
    let (vm, i) = interp();
    ev(
        &i,
        "(define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))",
    );
    assert_eq!(ev(&i, "(fib 15)").as_int(), Some(610));
    vm.shutdown();
}
