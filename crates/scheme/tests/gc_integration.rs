//! The Scheme machine under real garbage-collection pressure: tiny
//! nurseries, forced promotions and major collections, with environment
//! frames and closures live across every collection.

use sting_areas::HeapConfig;
use sting_core::VmBuilder;
use sting_scheme::Interp;

fn tight_interp() -> (std::sync::Arc<sting_core::Vm>, Interp) {
    let vm = VmBuilder::new().vps(1).build();
    let mut i = Interp::new(vm.clone());
    i.set_heap_config(HeapConfig {
        young_words: 4 * 1024,
        old_trigger_words: 24 * 1024,
    });
    (vm, i)
}

#[test]
fn retained_list_survives_major_collections() {
    let (vm, i) = tight_interp();
    // Builds and retains a 30k list: promotions + major collections, with
    // the named-let frame live the whole time.
    let v = i
        .eval(
            r#"
(begin
  (define (churn n acc) (if (= n 0) acc (churn (- n 1) (cons n acc))))
  (let ((l (churn 30000 '())))
    (list (length l) (car l) (list-ref l 29999) (cadr (gc-stats)))))
"#,
        )
        .unwrap();
    let items: Vec<i64> = v.list_iter().map(|x| x.as_int().unwrap()).collect();
    assert_eq!(items[0], 30000, "length preserved");
    assert_eq!(items[1], 1, "head preserved");
    assert_eq!(items[2], 30000, "tail preserved");
    assert!(items[3] > 0, "major collections happened: {items:?}");
    vm.shutdown();
}

#[test]
fn closures_and_frames_survive_major_collections() {
    let (vm, i) = tight_interp();
    // Closures capturing frames, stored in a long-lived structure that
    // gets promoted — the exact shape that once broke native pruning.
    let v = i
        .eval(
            r#"
(begin
  (define (make-adders n)
    (let loop ((i 0) (acc '()))
      (if (= i n)
          acc
          (loop (+ i 1) (cons (lambda (x) (+ x i)) acc)))))
  (define (churn n) (if (= n 0) 'done (begin (cons n n) (churn (- n 1)))))
  (let ((adders (make-adders 200)))
    (churn 60000)
    ;; Apply every closure after heavy collection pressure.
    (fold + 0 (map (lambda (f) (f 1)) adders))))
"#,
        )
        .unwrap();
    // Sum over f_i(1) = 1 + i for i in 0..200.
    assert_eq!(v.as_int(), Some((0..200i64).map(|i| 1 + i).sum()));
    vm.shutdown();
}

#[test]
fn string_and_vector_data_survive_pressure() {
    let (vm, i) = tight_interp();
    let v = i
        .eval(
            r#"
(begin
  (define v (make-vector 50 "x"))
  (define (fill! i)
    (when (< i 50)
      (vector-set! v i (string-append "item-" (number->string i)))
      (fill! (+ i 1))))
  (define (churn n) (if (= n 0) 'ok (begin (cons n n) (churn (- n 1)))))
  (fill! 0)
  (churn 50000)
  (list (vector-ref v 0) (vector-ref v 49) (vector-length v)))
"#,
        )
        .unwrap();
    assert_eq!(v.to_string(), "(\"item-0\" \"item-49\" 50)");
    vm.shutdown();
}
