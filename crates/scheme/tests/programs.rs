//! The standalone Scheme programs under `examples/scheme/` load and
//! produce their documented answers.

use sting_core::VmBuilder;
use sting_scheme::Interp;

fn run_file(path: &str) -> sting_value::Value {
    let vm = VmBuilder::new().vps(2).build();
    let interp = Interp::new(vm.clone());
    let src = std::fs::read_to_string(
        std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../examples/scheme")
            .join(path),
    )
    .expect("program file exists");
    let v = interp.eval(&src).expect("program evaluates");
    vm.shutdown();
    v
}

#[test]
fn sieve_program() {
    // The file's last form returns the count of primes ≤ 200.
    assert_eq!(run_file("sieve.scm").as_int(), Some(46));
}

#[test]
fn farm_program() {
    assert_eq!(
        run_file("farm.scm").as_int(),
        Some((0..20i64).map(|n| n * n).sum())
    );
}
