//! The expander: surface s-expressions → core forms.
//!
//! Core forms: `quote`, variable reference, `if`, `set!`, `lambda`,
//! `begin`, application, and top-level `define`.  Everything else —
//! `let`, `let*`, `letrec`, named `let`, `cond`, `case`, `and`, `or`,
//! `when`, `unless`, `do`, `while`, `quasiquote`, internal `define` — is
//! rewritten here.

use crate::error::SchemeError;
use crate::sexp::{Sexp, Span};
use sting_value::Symbol;

/// A core expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Core {
    /// Literal datum.
    Quote(Sexp),
    /// Variable reference.
    Var(Symbol),
    /// Conditional.
    If(Box<Core>, Box<Core>, Box<Core>),
    /// Assignment.
    Set(Symbol, Box<Core>),
    /// Abstraction.
    Lambda {
        /// Fixed parameters.
        params: Vec<Symbol>,
        /// Rest parameter (dotted tail), if any.
        rest: Option<Symbol>,
        /// Body (an implicit `begin`).
        body: Vec<Core>,
        /// Name, for diagnostics (from `define` when available).
        name: Option<Symbol>,
        /// Source position of the `lambda`/`define` form, if known.
        span: Span,
    },
    /// Sequencing.
    Begin(Vec<Core>),
    /// Application; the [`Span`] is the call site.
    Call(Box<Core>, Vec<Core>, Span),
    /// Exception handler: evaluate the first expression; on a raise, bind
    /// the raised value and evaluate the handler body.
    Try {
        /// Protected expression.
        body: Box<Core>,
        /// Variable bound to the raised value.
        var: Symbol,
        /// Handler body.
        handler: Vec<Core>,
    },
    /// Top-level definition (only valid at top level).
    Define(Symbol, Box<Core>),
}

fn sym(s: &str) -> Symbol {
    Symbol::intern(s)
}

fn err(msg: impl Into<String>) -> SchemeError {
    SchemeError::Syntax(msg.into())
}

/// Expands one top-level form.
///
/// # Errors
///
/// [`SchemeError::Syntax`] on malformed special forms.
pub fn expand_top(s: &Sexp) -> Result<Core, SchemeError> {
    match s {
        Sexp::List(items, None, span) if !items.is_empty() => {
            if let Some(head) = items[0].as_sym() {
                if head == sym("define") {
                    return expand_define(&items[1..], *span);
                }
            }
            expand(s)
        }
        _ => expand(s),
    }
}

fn expand_define(rest: &[Sexp], span: Span) -> Result<Core, SchemeError> {
    match rest {
        // (define (f a b . r) body...)
        [Sexp::List(sig, tail, _), body @ ..] if !sig.is_empty() => {
            let name = sig[0]
                .as_sym()
                .ok_or_else(|| err("define: procedure name must be a symbol"))?;
            let params = sig[1..]
                .iter()
                .map(|p| p.as_sym().ok_or_else(|| err("define: bad parameter")))
                .collect::<Result<Vec<_>, _>>()?;
            let rest_param = match tail {
                Some(t) => Some(
                    t.as_sym()
                        .ok_or_else(|| err("define: bad rest parameter"))?,
                ),
                None => None,
            };
            let body = expand_body(body)?;
            Ok(Core::Define(
                name,
                Box::new(Core::Lambda {
                    params,
                    rest: rest_param,
                    body,
                    name: Some(name),
                    span,
                }),
            ))
        }
        // (define x e)
        [Sexp::Sym(name), value] => Ok(Core::Define(*name, Box::new(expand(value)?))),
        // (define x) — unspecified initial value
        [Sexp::Sym(name)] => Ok(Core::Define(
            *name,
            Box::new(Core::Quote(Sexp::Bool(false))),
        )),
        _ => Err(err("define: malformed")),
    }
}

/// Expands a non-definition expression.
///
/// # Errors
///
/// [`SchemeError::Syntax`] on malformed special forms.
pub fn expand(s: &Sexp) -> Result<Core, SchemeError> {
    match s {
        Sexp::Int(_)
        | Sexp::Float(_)
        | Sexp::Bool(_)
        | Sexp::Char(_)
        | Sexp::Str(_)
        | Sexp::Vector(_) => Ok(Core::Quote(s.clone())),
        Sexp::Sym(v) => Ok(Core::Var(*v)),
        Sexp::List(items, None, _) if items.is_empty() => Err(err("empty application ()")),
        Sexp::List(_, Some(_), _) => Err(err(format!("dotted expression {s}"))),
        Sexp::List(items, None, span) => {
            let span = *span;
            let head = items[0].as_sym();
            let rest = &items[1..];
            match head.map(|h| h.as_str().to_string()).as_deref() {
                Some("quote") => match rest {
                    [d] => Ok(Core::Quote(d.clone())),
                    _ => Err(err("quote: expected one datum")),
                },
                Some("if") => match rest {
                    [c, t] => Ok(Core::If(
                        Box::new(expand(c)?),
                        Box::new(expand(t)?),
                        Box::new(Core::Quote(Sexp::Bool(false))),
                    )),
                    [c, t, e] => Ok(Core::If(
                        Box::new(expand(c)?),
                        Box::new(expand(t)?),
                        Box::new(expand(e)?),
                    )),
                    _ => Err(err("if: expected 2 or 3 forms")),
                },
                Some("set!") => match rest {
                    [Sexp::Sym(v), e] => Ok(Core::Set(*v, Box::new(expand(e)?))),
                    _ => Err(err("set!: expected symbol and expression")),
                },
                Some("lambda") => expand_lambda(rest, None, span),
                Some("begin") => {
                    if rest.is_empty() {
                        Ok(Core::Quote(Sexp::Bool(false)))
                    } else {
                        Ok(Core::Begin(expand_body(rest)?))
                    }
                }
                Some("define") => Err(err("define only allowed at top level or body start")),
                Some("let") => expand_let(rest, span),
                Some("let*") => expand_let_star(rest, span),
                Some("letrec") | Some("letrec*") => expand_letrec(rest, span),
                Some("cond") => expand_cond(rest),
                Some("case") => expand_case(rest, span),
                Some("and") => Ok(expand_and(rest)?),
                Some("or") => Ok(expand_or(rest)?),
                Some("when") => match rest {
                    [c, body @ ..] if !body.is_empty() => Ok(Core::If(
                        Box::new(expand(c)?),
                        Box::new(Core::Begin(expand_body(body)?)),
                        Box::new(Core::Quote(Sexp::Bool(false))),
                    )),
                    _ => Err(err("when: expected condition and body")),
                },
                Some("unless") => match rest {
                    [c, body @ ..] if !body.is_empty() => Ok(Core::If(
                        Box::new(expand(c)?),
                        Box::new(Core::Quote(Sexp::Bool(false))),
                        Box::new(Core::Begin(expand_body(body)?)),
                    )),
                    _ => Err(err("unless: expected condition and body")),
                },
                Some("while") => expand_while(rest, span),
                Some("do") => expand_do(rest, span),
                Some("quasiquote") => match rest {
                    [t] => expand(&qq(t, 1)?),
                    _ => Err(err("quasiquote: expected one template")),
                },
                Some("unquote") | Some("unquote-splicing") => {
                    Err(err("unquote outside quasiquote"))
                }
                Some("try") => expand_try(rest),
                Some("delay") => match rest {
                    // (delay e) => (create-thread (lambda () e))
                    [e] => Ok(Core::Call(
                        Box::new(Core::Var(sym("create-thread"))),
                        vec![Core::Lambda {
                            params: vec![],
                            rest: None,
                            body: vec![expand(e)?],
                            name: None,
                            span,
                        }],
                        span,
                    )),
                    _ => Err(err("delay: expected one expression")),
                },
                Some("future") => match rest {
                    // (future e) => (fork-thread (lambda () e))
                    [e] => Ok(Core::Call(
                        Box::new(Core::Var(sym("fork-thread"))),
                        vec![Core::Lambda {
                            params: vec![],
                            rest: None,
                            body: vec![expand(e)?],
                            name: None,
                            span,
                        }],
                        span,
                    )),
                    _ => Err(err("future: expected one expression")),
                },
                _ => {
                    let f = expand(&items[0])?;
                    let args = rest.iter().map(expand).collect::<Result<Vec<_>, _>>()?;
                    Ok(Core::Call(Box::new(f), args, span))
                }
            }
        }
    }
}

fn expand_lambda(rest: &[Sexp], name: Option<Symbol>, span: Span) -> Result<Core, SchemeError> {
    match rest {
        [formals, body @ ..] if !body.is_empty() => {
            let (params, rest_param) = match formals {
                // (lambda args body) — all-rest
                Sexp::Sym(r) => (Vec::new(), Some(*r)),
                Sexp::List(ps, tail, _) => {
                    let params = ps
                        .iter()
                        .map(|p| p.as_sym().ok_or_else(|| err("lambda: bad parameter")))
                        .collect::<Result<Vec<_>, _>>()?;
                    let rest_param = match tail {
                        Some(t) => Some(
                            t.as_sym()
                                .ok_or_else(|| err("lambda: bad rest parameter"))?,
                        ),
                        None => None,
                    };
                    (params, rest_param)
                }
                _ => return Err(err("lambda: bad formals")),
            };
            Ok(Core::Lambda {
                params,
                rest: rest_param,
                body: expand_body(body)?,
                name,
                span,
            })
        }
        _ => Err(err("lambda: expected formals and body")),
    }
}

/// Expands a body, converting leading internal defines to a `letrec*`.
fn expand_body(body: &[Sexp]) -> Result<Vec<Core>, SchemeError> {
    let mut defines = Vec::new();
    let mut i = 0;
    while i < body.len() && body[i].is_form("define") {
        let Sexp::List(items, None, span) = &body[i] else {
            unreachable!()
        };
        match expand_define(&items[1..], *span)? {
            Core::Define(name, value) => defines.push((name, *value)),
            _ => unreachable!("expand_define yields Define"),
        }
        i += 1;
    }
    let rest = &body[i..];
    if rest.is_empty() {
        return Err(err("body has no expressions"));
    }
    let exprs = rest.iter().map(expand).collect::<Result<Vec<_>, _>>()?;
    if defines.is_empty() {
        return Ok(exprs);
    }
    // letrec*: bind all names to #f, then set! each in order.
    let params: Vec<Symbol> = defines.iter().map(|(n, _)| *n).collect();
    let mut inner: Vec<Core> = defines
        .into_iter()
        .map(|(n, v)| Core::Set(n, Box::new(v)))
        .collect();
    inner.extend(exprs);
    let lam = Core::Lambda {
        params,
        rest: None,
        body: inner,
        name: None,
        span: Span::NONE,
    };
    let args = vec![Core::Quote(Sexp::Bool(false)); lam_params_len(&lam)];
    Ok(vec![Core::Call(Box::new(lam), args, Span::NONE)])
}

fn lam_params_len(l: &Core) -> usize {
    match l {
        Core::Lambda { params, .. } => params.len(),
        _ => 0,
    }
}

fn expand_let(rest: &[Sexp], span: Span) -> Result<Core, SchemeError> {
    match rest {
        // Named let: (let loop ((v e)...) body...)
        [Sexp::Sym(name), Sexp::List(bindings, None, _), body @ ..] if !body.is_empty() => {
            let (vars, inits) = split_bindings(bindings)?;
            // ((letrec ((name (lambda (vars) body))) name) inits...)
            let lam = Sexp::list_at(
                [
                    vec![Sexp::sym("lambda"), Sexp::list(vars.clone())],
                    body.to_vec(),
                ]
                .concat(),
                span,
            );
            let letrec = Sexp::list_at(
                vec![
                    Sexp::sym("letrec"),
                    Sexp::list(vec![Sexp::list(vec![Sexp::Sym(*name), lam])]),
                    Sexp::Sym(*name),
                ],
                span,
            );
            let call = Sexp::list_at([vec![letrec], inits].concat(), span);
            expand(&call)
        }
        [Sexp::List(bindings, None, _), body @ ..] if !body.is_empty() => {
            let (vars, inits) = split_bindings(bindings)?;
            let lam = Sexp::list_at(
                [vec![Sexp::sym("lambda"), Sexp::list(vars)], body.to_vec()].concat(),
                span,
            );
            expand(&Sexp::list_at([vec![lam], inits].concat(), span))
        }
        _ => Err(err("let: malformed")),
    }
}

fn expand_let_star(rest: &[Sexp], span: Span) -> Result<Core, SchemeError> {
    match rest {
        [Sexp::List(bindings, None, _), body @ ..] if !body.is_empty() => {
            if bindings.is_empty() {
                return expand(&Sexp::list_at(
                    [vec![Sexp::sym("let"), Sexp::list(vec![])], body.to_vec()].concat(),
                    span,
                ));
            }
            let first = bindings[0].clone();
            let rest_b = Sexp::list_at(
                [
                    vec![Sexp::sym("let*"), Sexp::list(bindings[1..].to_vec())],
                    body.to_vec(),
                ]
                .concat(),
                span,
            );
            expand(&Sexp::list_at(
                vec![Sexp::sym("let"), Sexp::list(vec![first]), rest_b],
                span,
            ))
        }
        _ => Err(err("let*: malformed")),
    }
}

fn expand_letrec(rest: &[Sexp], span: Span) -> Result<Core, SchemeError> {
    match rest {
        [Sexp::List(bindings, None, _), body @ ..] if !body.is_empty() => {
            let (vars, inits) = split_bindings(bindings)?;
            // (let ((v #f)...) (set! v init)... body...)
            let false_bindings: Vec<Sexp> = vars
                .iter()
                .map(|v| Sexp::list(vec![v.clone(), Sexp::Bool(false)]))
                .collect();
            let sets: Vec<Sexp> = vars
                .iter()
                .zip(&inits)
                .map(|(v, i)| Sexp::list(vec![Sexp::sym("set!"), v.clone(), i.clone()]))
                .collect();
            expand(&Sexp::list_at(
                [
                    vec![Sexp::sym("let"), Sexp::list(false_bindings)],
                    sets,
                    body.to_vec(),
                ]
                .concat(),
                span,
            ))
        }
        _ => Err(err("letrec: malformed")),
    }
}

fn split_bindings(bindings: &[Sexp]) -> Result<(Vec<Sexp>, Vec<Sexp>), SchemeError> {
    let mut vars = Vec::new();
    let mut inits = Vec::new();
    for b in bindings {
        match b {
            Sexp::List(pair, None, _) if pair.len() == 2 && pair[0].as_sym().is_some() => {
                vars.push(pair[0].clone());
                inits.push(pair[1].clone());
            }
            _ => return Err(err(format!("bad binding {b}"))),
        }
    }
    Ok((vars, inits))
}

fn expand_cond(clauses: &[Sexp]) -> Result<Core, SchemeError> {
    match clauses {
        [] => Ok(Core::Quote(Sexp::Bool(false))),
        [clause, more @ ..] => match clause {
            Sexp::List(c, None, clause_span) if !c.is_empty() => {
                let is_else = c[0].as_sym() == Some(Symbol::intern("else"));
                if is_else {
                    if !more.is_empty() {
                        return Err(err("cond: else must be last"));
                    }
                    return Ok(Core::Begin(expand_body(&c[1..])?));
                }
                let test = expand(&c[0])?;
                let rest_core = expand_cond(more)?;
                if c.len() == 1 {
                    // (cond (test) more...) — value of test if truthy.
                    // ((lambda (t) (if t t rest)) test)
                    let t = Symbol::intern("%cond-tmp");
                    return Ok(Core::Call(
                        Box::new(Core::Lambda {
                            params: vec![t],
                            rest: None,
                            body: vec![Core::If(
                                Box::new(Core::Var(t)),
                                Box::new(Core::Var(t)),
                                Box::new(rest_core),
                            )],
                            name: None,
                            span: *clause_span,
                        }),
                        vec![test],
                        *clause_span,
                    ));
                }
                Ok(Core::If(
                    Box::new(test),
                    Box::new(Core::Begin(expand_body(&c[1..])?)),
                    Box::new(rest_core),
                ))
            }
            _ => Err(err(format!("cond: bad clause {clause}"))),
        },
    }
}

fn expand_case(rest: &[Sexp], span: Span) -> Result<Core, SchemeError> {
    // (case key ((d1 d2) body...) ... (else body...))
    match rest {
        [key, clauses @ ..] => {
            let k = Symbol::intern("%case-key");
            let mut cond_clauses: Vec<Sexp> = Vec::new();
            for c in clauses {
                match c {
                    Sexp::List(items, None, _) if !items.is_empty() => {
                        if items[0].as_sym() == Some(Symbol::intern("else")) {
                            cond_clauses.push(c.clone());
                        } else {
                            let test = Sexp::list(vec![
                                Sexp::sym("memv"),
                                Sexp::Sym(k),
                                Sexp::list(vec![Sexp::sym("quote"), items[0].clone()]),
                            ]);
                            cond_clauses
                                .push(Sexp::list([vec![test], items[1..].to_vec()].concat()));
                        }
                    }
                    _ => return Err(err("case: bad clause")),
                }
            }
            let cond = Sexp::list_at([vec![Sexp::sym("cond")], cond_clauses].concat(), span);
            expand(&Sexp::list_at(
                vec![
                    Sexp::sym("let"),
                    Sexp::list(vec![Sexp::list(vec![Sexp::Sym(k), key.clone()])]),
                    cond,
                ],
                span,
            ))
        }
        _ => Err(err("case: malformed")),
    }
}

fn expand_and(rest: &[Sexp]) -> Result<Core, SchemeError> {
    match rest {
        [] => Ok(Core::Quote(Sexp::Bool(true))),
        [e] => expand(e),
        [e, more @ ..] => Ok(Core::If(
            Box::new(expand(e)?),
            Box::new(expand_and(more)?),
            Box::new(Core::Quote(Sexp::Bool(false))),
        )),
    }
}

fn expand_or(rest: &[Sexp]) -> Result<Core, SchemeError> {
    match rest {
        [] => Ok(Core::Quote(Sexp::Bool(false))),
        [e] => expand(e),
        [e, more @ ..] => {
            let t = Symbol::intern("%or-tmp");
            Ok(Core::Call(
                Box::new(Core::Lambda {
                    params: vec![t],
                    rest: None,
                    body: vec![Core::If(
                        Box::new(Core::Var(t)),
                        Box::new(Core::Var(t)),
                        Box::new(expand_or(more)?),
                    )],
                    name: None,
                    span: e.span(),
                }),
                vec![expand(e)?],
                e.span(),
            ))
        }
    }
}

fn expand_while(rest: &[Sexp], span: Span) -> Result<Core, SchemeError> {
    match rest {
        [test, body @ ..] if !body.is_empty() => {
            // (let loop () (when test body... (loop)))
            let loop_sym = Sexp::sym("%while-loop");
            let when = Sexp::list_at(
                [
                    vec![Sexp::sym("when"), test.clone()],
                    body.to_vec(),
                    vec![Sexp::list_at(vec![loop_sym.clone()], span)],
                ]
                .concat(),
                span,
            );
            expand(&Sexp::list_at(
                vec![Sexp::sym("let"), loop_sym, Sexp::list(vec![]), when],
                span,
            ))
        }
        _ => Err(err("while: expected test and body")),
    }
}

fn expand_do(rest: &[Sexp], span: Span) -> Result<Core, SchemeError> {
    // (do ((var init step)...) (test result...) body...)
    match rest {
        [Sexp::List(specs, None, _), Sexp::List(exit, None, _), body @ ..] if !exit.is_empty() => {
            let mut vars = Vec::new();
            let mut inits = Vec::new();
            let mut steps = Vec::new();
            for s in specs {
                match s {
                    Sexp::List(parts, None, _) => match parts.as_slice() {
                        [v, i] => {
                            vars.push(v.clone());
                            inits.push(i.clone());
                            steps.push(v.clone());
                        }
                        [v, i, st] => {
                            vars.push(v.clone());
                            inits.push(i.clone());
                            steps.push(st.clone());
                        }
                        _ => return Err(err("do: bad variable spec")),
                    },
                    _ => return Err(err("do: bad variable spec")),
                }
            }
            let loop_sym = Sexp::sym("%do-loop");
            let recur = Sexp::list_at([vec![loop_sym.clone()], steps].concat(), span);
            let result = if exit.len() > 1 {
                Sexp::list_at(
                    [vec![Sexp::sym("begin")], exit[1..].to_vec()].concat(),
                    span,
                )
            } else {
                Sexp::Bool(false)
            };
            let if_form = Sexp::list_at(
                vec![
                    Sexp::sym("if"),
                    exit[0].clone(),
                    result,
                    Sexp::list_at(
                        [vec![Sexp::sym("begin")], body.to_vec(), vec![recur]].concat(),
                        span,
                    ),
                ],
                span,
            );
            let bindings: Vec<Sexp> = vars
                .iter()
                .zip(&inits)
                .map(|(v, i)| Sexp::list(vec![v.clone(), i.clone()]))
                .collect();
            expand(&Sexp::list_at(
                vec![Sexp::sym("let"), loop_sym, Sexp::list(bindings), if_form],
                span,
            ))
        }
        _ => Err(err("do: malformed")),
    }
}

fn expand_try(rest: &[Sexp]) -> Result<Core, SchemeError> {
    // (try E (catch (x) H...))
    match rest {
        [body, catch] if catch.is_form("catch") => {
            let Sexp::List(c, None, _) = catch else {
                unreachable!()
            };
            match &c[1..] {
                [Sexp::List(binder, None, _), handler @ ..]
                    if binder.len() == 1 && !handler.is_empty() =>
                {
                    let var = binder[0]
                        .as_sym()
                        .ok_or_else(|| err("try: catch variable must be a symbol"))?;
                    Ok(Core::Try {
                        body: Box::new(expand(body)?),
                        var,
                        handler: expand_body(handler)?,
                    })
                }
                _ => Err(err("try: malformed catch clause")),
            }
        }
        _ => Err(err("try: expected (try expr (catch (var) handler...))")),
    }
}

/// Quasiquote expansion: produces a surface expression building the
/// template.
fn qq(t: &Sexp, depth: u32) -> Result<Sexp, SchemeError> {
    match t {
        Sexp::List(items, None, _) if t.is_form("unquote") => {
            if depth == 1 {
                Ok(items[1].clone())
            } else {
                Ok(Sexp::list(vec![
                    Sexp::sym("list"),
                    Sexp::list(vec![Sexp::sym("quote"), Sexp::sym("unquote")]),
                    qq(&items[1], depth - 1)?,
                ]))
            }
        }
        Sexp::List(items, None, _) if t.is_form("quasiquote") => Ok(Sexp::list(vec![
            Sexp::sym("list"),
            Sexp::list(vec![Sexp::sym("quote"), Sexp::sym("quasiquote")]),
            qq(&items[1], depth + 1)?,
        ])),
        Sexp::List(items, tail, _) => {
            // Build with append/cons to honour unquote-splicing.
            let mut parts: Vec<Sexp> = Vec::new();
            for item in items {
                if item.is_form("unquote-splicing") {
                    let Sexp::List(us, None, _) = item else {
                        unreachable!()
                    };
                    if depth == 1 {
                        parts.push(us[1].clone());
                    } else {
                        parts.push(Sexp::list(vec![Sexp::sym("list"), qq(item, depth - 1)?]));
                    }
                } else {
                    parts.push(Sexp::list(vec![Sexp::sym("list"), qq(item, depth)?]));
                }
            }
            let tail_expr = match tail {
                Some(t2) => qq(t2, depth)?,
                None => Sexp::list(vec![Sexp::sym("quote"), Sexp::list(vec![])]),
            };
            parts.push(tail_expr);
            Ok(Sexp::list([vec![Sexp::sym("append")], parts].concat()))
        }
        atom => Ok(Sexp::list(vec![Sexp::sym("quote"), atom.clone()])),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reader::read_one;

    fn x(src: &str) -> Core {
        expand_top(&read_one(src).unwrap()).unwrap()
    }

    #[test]
    fn literals_and_vars() {
        assert_eq!(x("42"), Core::Quote(Sexp::Int(42)));
        assert_eq!(x("foo"), Core::Var(Symbol::intern("foo")));
        assert_eq!(
            x("'(1 2)"),
            Core::Quote(Sexp::list(vec![Sexp::Int(1), Sexp::Int(2)]))
        );
    }

    #[test]
    fn if_defaults_else() {
        match x("(if 1 2)") {
            Core::If(_, _, e) => assert_eq!(*e, Core::Quote(Sexp::Bool(false))),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn define_procedure_sugar() {
        match x("(define (f a b) a)") {
            Core::Define(name, value) => {
                assert_eq!(name, Symbol::intern("f"));
                match *value {
                    Core::Lambda { params, name, .. } => {
                        assert_eq!(params.len(), 2);
                        assert_eq!(name, Some(Symbol::intern("f")));
                    }
                    other => panic!("{other:?}"),
                }
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn let_becomes_application() {
        match x("(let ((a 1) (b 2)) b)") {
            Core::Call(f, args, _) => {
                assert!(matches!(*f, Core::Lambda { .. }));
                assert_eq!(args.len(), 2);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn variadic_lambda() {
        match x("(lambda args args)") {
            Core::Lambda { params, rest, .. } => {
                assert!(params.is_empty());
                assert_eq!(rest, Some(Symbol::intern("args")));
            }
            other => panic!("{other:?}"),
        }
        match x("(lambda (a . r) r)") {
            Core::Lambda { params, rest, .. } => {
                assert_eq!(params.len(), 1);
                assert!(rest.is_some());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn and_or_expand() {
        assert_eq!(x("(and)"), Core::Quote(Sexp::Bool(true)));
        assert_eq!(x("(or)"), Core::Quote(Sexp::Bool(false)));
        assert!(matches!(x("(and 1 2)"), Core::If(..)));
        assert!(matches!(x("(or 1 2)"), Core::Call(..)));
    }

    #[test]
    fn syntax_errors() {
        for bad in [
            "(if)",
            "(set! 3 4)",
            "(lambda)",
            "(let (x) x)",
            "()",
            "(quote)",
            "(try 1 2)",
            "(define)",
        ] {
            assert!(
                expand_top(&read_one(bad).unwrap()).is_err(),
                "{bad} should fail"
            );
        }
    }

    #[test]
    fn internal_defines_become_letrec() {
        match x("(lambda () (define a 1) (define b 2) (+ a b))") {
            Core::Lambda { body, .. } => {
                assert_eq!(body.len(), 1);
                assert!(matches!(&body[0], Core::Call(..)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn try_form() {
        match x("(try (f) (catch (e) e))") {
            Core::Try { var, handler, .. } => {
                assert_eq!(var, Symbol::intern("e"));
                assert_eq!(handler.len(), 1);
            }
            other => panic!("{other:?}"),
        }
    }
}
