;; The STING Scheme prelude: library procedures written in the language
;; itself, evaluated once when an interpreter is created.  Concurrency
;; conveniences at the bottom build on the substrate primitives.

(define (list? x)
  (or (null? x) (and (pair? x) (list? (cdr x)))))

(define (iota n)
  (let loop ((i (- n 1)) (acc '()))
    (if (< i 0) acc (loop (- i 1) (cons i acc)))))

(define (fold f init lst)
  (if (null? lst) init (fold f (f init (car lst)) (cdr lst))))

(define (fold-right f init lst)
  (if (null? lst) init (f (car lst) (fold-right f init (cdr lst)))))

(define (last lst)
  (if (null? (cdr lst)) (car lst) (last (cdr lst))))

(define (any pred lst)
  (cond ((null? lst) #f)
        ((pred (car lst)) #t)
        (else (any pred (cdr lst)))))

(define (every pred lst)
  (cond ((null? lst) #t)
        ((pred (car lst)) (every pred (cdr lst)))
        (else #f)))

(define (take lst n)
  (if (or (zero? n) (null? lst))
      '()
      (cons (car lst) (take (cdr lst) (- n 1)))))

(define (drop lst n)
  (if (or (zero? n) (null? lst)) lst (drop (cdr lst) (- n 1))))

(define (assoc-ref alist key)
  (let ((hit (assoc key alist)))
    (if hit (cdr hit) #f)))

(define (string-join strs sep)
  (cond ((null? strs) "")
        ((null? (cdr strs)) (car strs))
        (else (string-append (car strs) sep (string-join (cdr strs) sep)))))

(define (sum lst) (fold + 0 lst))

;; ---------------------------------------------------------------------
;; Concurrency conveniences (the paper's idioms, packaged)
;; ---------------------------------------------------------------------

;; Apply f to every element in its own thread; barrier on the results
;; (wait-for-all keeps order).
(define (parallel-map f lst)
  (wait-for-all (map (lambda (x) (fork-thread (lambda () (f x)))) lst)))

;; Evaluate thunks speculatively; first result wins, losers terminated.
(define (race . thunks)
  (cadr (wait-for-one! (map fork-thread thunks))))

;; Fork n copies of a worker thunk; returns the thread list.
(define (spawn-workers n thunk)
  (map (lambda (k) (fork-thread thunk)) (iota n)))

;; A future protected by memoized touch is just a delayed thread.
(define (make-promise thunk) (create-thread thunk))
(define (force-promise p) (touch p))

(define (merge less? a b)
  (cond ((null? a) b)
        ((null? b) a)
        ((less? (car b) (car a)) (cons (car b) (merge less? a (cdr b))))
        (else (cons (car a) (merge less? (cdr a) b)))))

;; Bottom-up merge sort (stable).
(define (list-sort less? lst)
  (define (pairwise runs)
    (cond ((null? runs) '())
          ((null? (cdr runs)) runs)
          (else (cons (merge less? (car runs) (cadr runs))
                      (pairwise (cddr runs))))))
  (let loop ((runs (map list lst)))
    (cond ((null? runs) '())
          ((null? (cdr runs)) (car runs))
          (else (loop (pairwise runs))))))

(define (remove pred lst)
  (filter (lambda (x) (not (pred x))) lst))

(define (delete x lst)
  (remove (lambda (y) (equal? x y)) lst))

(define (list-index pred lst)
  (let loop ((i 0) (l lst))
    (cond ((null? l) #f)
          ((pred (car l)) i)
          (else (loop (+ i 1) (cdr l))))))

(define (append-map f lst)
  (fold append '() (map f lst)))

(define (count pred lst)
  (fold (lambda (acc x) (if (pred x) (+ acc 1) acc)) 0 lst))
