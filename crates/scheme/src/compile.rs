//! The compiler: core forms → bytecode with lexical addressing and proper
//! tail calls.

use crate::bytecode::{CodeObject, Op, Program};
use crate::error::SchemeError;
use crate::expand::Core;
use crate::sexp::{Sexp, Span};
use sting_value::{Symbol, Value};

/// Compile-time lexical environment: a stack of frames of variable names.
#[derive(Debug, Clone, Default)]
struct CEnv {
    frames: Vec<Vec<Symbol>>,
}

impl CEnv {
    fn lookup(&self, name: Symbol) -> Option<(u16, u16)> {
        for (depth, frame) in self.frames.iter().rev().enumerate() {
            if let Some(idx) = frame.iter().position(|s| *s == name) {
                return Some((depth as u16, idx as u16));
            }
        }
        None
    }

    fn push(&mut self, vars: Vec<Symbol>) {
        self.frames.push(vars);
    }

    fn pop(&mut self) {
        self.frames.pop();
    }
}

/// Compiles a top-level core form into a zero-argument code object added
/// to `program`; returns its index.
///
/// # Errors
///
/// [`SchemeError::Compile`] on malformed programs (e.g. `define` nested
/// under an expression).
pub fn compile_top(core: &Core, program: &mut Program) -> Result<u32, SchemeError> {
    let mut c = Compiler {
        program,
        env: CEnv::default(),
        ops: Vec::new(),
        spans: Vec::new(),
        cur_span: Span::NONE,
    };
    match core {
        Core::Define(name, value) => {
            c.expr(value, false)?;
            let slot = c.program.global_slot(*name);
            c.emit(Op::SetGlobal(slot));
        }
        other => c.expr(other, false)?,
    }
    c.emit(Op::Return);
    let ops = c.ops;
    let spans = c.spans;
    Ok(program.add_code(CodeObject {
        ops,
        arity: 0,
        rest: false,
        name: None,
        spans,
        span: Span::NONE,
    }))
}

struct Compiler<'a> {
    program: &'a mut Program,
    env: CEnv,
    ops: Vec<Op>,
    /// Source span per emitted op, parallel to `ops`.
    spans: Vec<Span>,
    /// Span of the innermost enclosing surface form being compiled.
    cur_span: Span,
}

impl Compiler<'_> {
    fn err(msg: impl Into<String>) -> SchemeError {
        SchemeError::Compile(msg.into())
    }

    fn emit(&mut self, op: Op) {
        self.ops.push(op);
        self.spans.push(self.cur_span);
    }

    fn expr(&mut self, e: &Core, tail: bool) -> Result<(), SchemeError> {
        match e {
            Core::Quote(d) => self.constant(d),
            Core::Var(name) => {
                match self.env.lookup(*name) {
                    Some((depth, idx)) => self.emit(Op::Local(depth, idx)),
                    None => {
                        let slot = self.program.global_slot(*name);
                        self.emit(Op::Global(slot));
                    }
                }
                Ok(())
            }
            Core::Set(name, value) => {
                self.expr(value, false)?;
                match self.env.lookup(*name) {
                    Some((depth, idx)) => self.emit(Op::SetLocal(depth, idx)),
                    None => {
                        let slot = self.program.global_slot(*name);
                        self.emit(Op::SetGlobal(slot));
                    }
                }
                Ok(())
            }
            Core::If(cond, then, els) => {
                self.expr(cond, false)?;
                let jf = self.ops.len();
                self.emit(Op::JumpIfFalse(0));
                self.expr(then, tail)?;
                let jend = self.ops.len();
                self.emit(Op::Jump(0));
                let else_start = self.ops.len();
                self.ops[jf] = Op::JumpIfFalse((else_start - jf - 1) as i32);
                self.expr(els, tail)?;
                let end = self.ops.len();
                self.ops[jend] = Op::Jump((end - jend - 1) as i32);
                Ok(())
            }
            Core::Begin(body) => {
                for (i, b) in body.iter().enumerate() {
                    let last = i + 1 == body.len();
                    self.expr(b, tail && last)?;
                    if !last {
                        self.emit(Op::Pop);
                    }
                }
                Ok(())
            }
            Core::Lambda {
                params,
                rest,
                body,
                name,
                span,
            } => {
                let code = self.lambda(params, *rest, body, *name, *span)?;
                self.emit(Op::Closure(code));
                Ok(())
            }
            Core::Call(f, args, span) => {
                let call_span = span.or(self.cur_span);
                let saved = self.cur_span;
                self.cur_span = call_span;
                self.expr(f, false)?;
                for a in args {
                    self.expr(a, false)?;
                }
                let n = u8::try_from(args.len())
                    .map_err(|_| Self::err("too many arguments (max 255)"))?;
                self.cur_span = call_span;
                self.emit(if tail { Op::TailCall(n) } else { Op::Call(n) });
                self.cur_span = saved;
                Ok(())
            }
            Core::Try { body, var, handler } => {
                // (%try (lambda () body) (lambda (var) handler...))
                let try_sym = self.program.global_slot(Symbol::intern("%try"));
                self.emit(Op::Global(try_sym));
                let body_code =
                    self.lambda(&[], None, std::slice::from_ref(body), None, self.cur_span)?;
                self.emit(Op::Closure(body_code));
                let handler_code = self.lambda(&[*var], None, handler, None, self.cur_span)?;
                self.emit(Op::Closure(handler_code));
                self.emit(if tail { Op::TailCall(2) } else { Op::Call(2) });
                Ok(())
            }
            Core::Define(..) => Err(Self::err(
                "define is only allowed at top level or at the start of a body",
            )),
        }
    }

    fn lambda(
        &mut self,
        params: &[Symbol],
        rest: Option<Symbol>,
        body: &[Core],
        name: Option<Symbol>,
        span: Span,
    ) -> Result<u32, SchemeError> {
        let mut frame: Vec<Symbol> = params.to_vec();
        if let Some(r) = rest {
            frame.push(r);
        }
        let arity =
            u8::try_from(params.len()).map_err(|_| Self::err("too many parameters (max 255)"))?;
        self.env.push(frame);
        let saved_ops = std::mem::take(&mut self.ops);
        let saved_spans = std::mem::take(&mut self.spans);
        let saved_cur = std::mem::replace(&mut self.cur_span, span);
        let result = (|| -> Result<(), SchemeError> {
            if body.is_empty() {
                return Err(Self::err("empty lambda body"));
            }
            for (i, b) in body.iter().enumerate() {
                let last = i + 1 == body.len();
                self.expr(b, last)?;
                if !last {
                    self.emit(Op::Pop);
                }
            }
            self.emit(Op::Return);
            Ok(())
        })();
        let ops = std::mem::replace(&mut self.ops, saved_ops);
        let spans = std::mem::replace(&mut self.spans, saved_spans);
        self.cur_span = saved_cur;
        self.env.pop();
        result?;
        Ok(self.program.add_code(CodeObject {
            ops,
            arity,
            rest: rest.is_some(),
            name,
            spans,
            span,
        }))
    }

    fn constant(&mut self, d: &Sexp) -> Result<(), SchemeError> {
        match d {
            Sexp::Bool(true) => self.emit(Op::True),
            Sexp::Bool(false) => self.emit(Op::False),
            Sexp::Int(i) if i32::try_from(*i).is_ok() => {
                self.emit(Op::Int(*i as i32));
            }
            Sexp::List(items, None, _) if items.is_empty() => self.emit(Op::Nil),
            other => {
                let v = sexp_to_value(other)?;
                let k = self.program.add_constant(v);
                self.emit(Op::Const(k));
            }
        }
        Ok(())
    }
}

/// Converts a quoted datum to a substrate constant value.
///
/// # Errors
///
/// [`SchemeError::Compile`] if the datum cannot be a constant.
pub fn sexp_to_value(d: &Sexp) -> Result<Value, SchemeError> {
    Ok(match d {
        Sexp::Int(i) => Value::Int(*i),
        Sexp::Float(f) => Value::Float(*f),
        Sexp::Bool(b) => Value::Bool(*b),
        Sexp::Char(c) => Value::Char(*c),
        Sexp::Str(s) => Value::from(s.as_str()),
        Sexp::Sym(s) => Value::Sym(*s),
        Sexp::List(items, tail, _) => {
            let mut v = match tail {
                Some(t) => sexp_to_value(t)?,
                None => Value::Nil,
            };
            for item in items.iter().rev() {
                v = Value::cons(sexp_to_value(item)?, v);
            }
            v
        }
        Sexp::Vector(items) => Value::Vector(
            items
                .iter()
                .map(sexp_to_value)
                .collect::<Result<Vec<_>, _>>()?
                .into(),
        ),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expand::expand_top;
    use crate::reader::read_one;

    fn compile(src: &str) -> (Program, u32) {
        let mut p = Program::default();
        let core = expand_top(&read_one(src).unwrap()).unwrap();
        let id = compile_top(&core, &mut p).unwrap();
        (p, id)
    }

    #[test]
    fn small_int_inline() {
        let (p, id) = compile("42");
        assert_eq!(p.codes[id as usize].ops, vec![Op::Int(42), Op::Return]);
        assert!(p.constants.is_empty());
    }

    #[test]
    fn lambda_compiles_to_code_object() {
        let (p, id) = compile("(lambda (x) x)");
        // Top-level: Closure + Return; the body is its own code object.
        let top = &p.codes[id as usize];
        assert!(matches!(top.ops[0], Op::Closure(_)));
        let Op::Closure(body) = top.ops[0] else {
            panic!()
        };
        let body = &p.codes[body as usize];
        assert_eq!(body.arity, 1);
        assert!(!body.rest);
        assert_eq!(body.ops, vec![Op::Local(0, 0), Op::Return]);
    }

    #[test]
    fn tail_calls_marked() {
        let (p, _) = compile("(define (loop n) (loop n))");
        let body = p
            .codes
            .iter()
            .find(|c| c.name == Some(Symbol::intern("loop")))
            .unwrap();
        assert!(
            body.ops.iter().any(|op| matches!(op, Op::TailCall(1))),
            "self call in tail position must be a TailCall: {:?}",
            body.ops
        );
    }

    #[test]
    fn non_tail_calls_are_calls() {
        let (p, _) = compile("(define (f n) (+ 1 (f n)))");
        let body = p
            .codes
            .iter()
            .find(|c| c.name == Some(Symbol::intern("f")))
            .unwrap();
        assert!(body.ops.iter().any(|op| matches!(op, Op::Call(1))));
    }

    #[test]
    fn if_branches_jump() {
        let (p, id) = compile("(if #t 1 2)");
        let ops = &p.codes[id as usize].ops;
        assert!(ops.iter().any(|op| matches!(op, Op::JumpIfFalse(_))));
        assert!(ops.iter().any(|op| matches!(op, Op::Jump(_))));
    }

    #[test]
    fn globals_resolved_by_slot() {
        let (p, id) = compile("(set! x 5)");
        let ops = &p.codes[id as usize].ops;
        let slot = p
            .global_names
            .iter()
            .position(|s| *s == Symbol::intern("x"))
            .unwrap() as u32;
        assert!(ops.contains(&Op::SetGlobal(slot)));
    }

    #[test]
    fn let_locals_addressed() {
        let (p, _) = compile("(let ((a 1) (b 2)) b)");
        // The lambda body should reference Local(0,1) = b.
        assert!(p.codes.iter().any(|c| c.ops.contains(&Op::Local(0, 1))));
    }

    #[test]
    fn nested_lambda_addresses_outer_frame() {
        let (p, _) = compile("(lambda (x) (lambda (y) x))");
        assert!(p.codes.iter().any(|c| c.ops.contains(&Op::Local(1, 0))));
    }
}
