//! Surface syntax: s-expressions.

use std::fmt;
use sting_value::Symbol;

/// A source position (1-based line and column).  `Span::NONE` (all zeros)
/// means "unknown" — synthesized forms from macro expansion inherit the
/// span of the surface form they came from, or carry `NONE` when there is
/// none.  Spans are metadata: they never participate in [`Sexp`] equality.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct Span {
    /// 1-based source line (0 = unknown).
    pub line: u32,
    /// 1-based source column (0 = unknown).
    pub col: u32,
}

impl Span {
    /// The unknown span.
    pub const NONE: Span = Span { line: 0, col: 0 };

    /// A span at `line`:`col`.
    pub fn at(line: u32, col: u32) -> Span {
        Span { line, col }
    }

    /// Whether this span carries no position information.
    pub fn is_none(&self) -> bool {
        self.line == 0
    }

    /// This span, or `other` if this one is unknown.
    pub fn or(self, other: Span) -> Span {
        if self.is_none() {
            other
        } else {
            self
        }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_none() {
            write!(f, "?:?")
        } else {
            write!(f, "{}:{}", self.line, self.col)
        }
    }
}

/// A read s-expression.
#[derive(Debug, Clone)]
pub enum Sexp {
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Boolean literal (`#t` / `#f`).
    Bool(bool),
    /// Character literal (`#\a`).
    Char(char),
    /// String literal.
    Str(String),
    /// Symbol.
    Sym(Symbol),
    /// Proper list `(a b c)`; `tail` is the dotted tail of an improper
    /// list, if any.  The [`Span`] is the position of the opening
    /// parenthesis (or [`Span::NONE`] for synthesized lists).
    List(Vec<Sexp>, Option<Box<Sexp>>, Span),
    /// Vector literal `#(a b c)`.
    Vector(Vec<Sexp>),
}

// Spans are diagnostic metadata: two s-expressions are equal when their
// structure is, wherever they were read from.
impl PartialEq for Sexp {
    fn eq(&self, other: &Sexp) -> bool {
        match (self, other) {
            (Sexp::Int(a), Sexp::Int(b)) => a == b,
            (Sexp::Float(a), Sexp::Float(b)) => a == b,
            (Sexp::Bool(a), Sexp::Bool(b)) => a == b,
            (Sexp::Char(a), Sexp::Char(b)) => a == b,
            (Sexp::Str(a), Sexp::Str(b)) => a == b,
            (Sexp::Sym(a), Sexp::Sym(b)) => a == b,
            (Sexp::List(a, at, _), Sexp::List(b, bt, _)) => a == b && at == bt,
            (Sexp::Vector(a), Sexp::Vector(b)) => a == b,
            _ => false,
        }
    }
}

impl Sexp {
    /// A symbol s-expression from text.
    pub fn sym(name: &str) -> Sexp {
        Sexp::Sym(Symbol::intern(name))
    }

    /// A proper list (no source position).
    pub fn list(items: Vec<Sexp>) -> Sexp {
        Sexp::List(items, None, Span::NONE)
    }

    /// A proper list at a source position.
    pub fn list_at(items: Vec<Sexp>, span: Span) -> Sexp {
        Sexp::List(items, None, span)
    }

    /// The source position of this datum, if known (lists only: atoms do
    /// not carry positions).
    pub fn span(&self) -> Span {
        match self {
            Sexp::List(_, _, span) => *span,
            _ => Span::NONE,
        }
    }

    /// Whether this is the empty list `()`.
    pub fn is_nil(&self) -> bool {
        matches!(self, Sexp::List(items, None, _) if items.is_empty())
    }

    /// The symbol, if this is one.
    pub fn as_sym(&self) -> Option<Symbol> {
        match self {
            Sexp::Sym(s) => Some(*s),
            _ => None,
        }
    }

    /// Whether this is a proper list headed by the symbol `name`.
    pub fn is_form(&self, name: &str) -> bool {
        match self {
            Sexp::List(items, None, _) => items
                .first()
                .and_then(Sexp::as_sym)
                .is_some_and(|s| s == Symbol::intern(name)),
            _ => false,
        }
    }
}

impl fmt::Display for Sexp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Sexp::Int(i) => write!(f, "{i}"),
            Sexp::Float(x) => write!(f, "{x}"),
            Sexp::Bool(true) => write!(f, "#t"),
            Sexp::Bool(false) => write!(f, "#f"),
            Sexp::Char(' ') => write!(f, "#\\space"),
            Sexp::Char('\n') => write!(f, "#\\newline"),
            Sexp::Char(c) => write!(f, "#\\{c}"),
            Sexp::Str(s) => write!(f, "{s:?}"),
            Sexp::Sym(s) => write!(f, "{s}"),
            Sexp::List(items, tail, _) => {
                write!(f, "(")?;
                for (i, x) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ")?;
                    }
                    write!(f, "{x}")?;
                }
                if let Some(t) = tail {
                    write!(f, " . {t}")?;
                }
                write!(f, ")")
            }
            Sexp::Vector(items) => {
                write!(f, "#(")?;
                for (i, x) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ")?;
                    }
                    write!(f, "{x}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_do_not_affect_equality() {
        let a = Sexp::list(vec![Sexp::Int(1), Sexp::Int(2)]);
        let b = Sexp::list_at(vec![Sexp::Int(1), Sexp::Int(2)], Span::at(3, 7));
        assert_eq!(a, b);
        assert_eq!(b.span(), Span::at(3, 7));
        assert!(a.span().is_none());
    }

    #[test]
    fn span_display() {
        assert_eq!(Span::at(12, 4).to_string(), "12:4");
        assert_eq!(Span::NONE.to_string(), "?:?");
        assert_eq!(Span::NONE.or(Span::at(1, 1)), Span::at(1, 1));
        assert_eq!(Span::at(2, 2).or(Span::at(1, 1)), Span::at(2, 2));
    }
}
