//! Surface syntax: s-expressions.

use std::fmt;
use sting_value::Symbol;

/// A read s-expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Sexp {
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Boolean literal (`#t` / `#f`).
    Bool(bool),
    /// Character literal (`#\a`).
    Char(char),
    /// String literal.
    Str(String),
    /// Symbol.
    Sym(Symbol),
    /// Proper list `(a b c)`; `tail` is the dotted tail of an improper
    /// list, if any.
    List(Vec<Sexp>, Option<Box<Sexp>>),
    /// Vector literal `#(a b c)`.
    Vector(Vec<Sexp>),
}

impl Sexp {
    /// A symbol s-expression from text.
    pub fn sym(name: &str) -> Sexp {
        Sexp::Sym(Symbol::intern(name))
    }

    /// A proper list.
    pub fn list(items: Vec<Sexp>) -> Sexp {
        Sexp::List(items, None)
    }

    /// Whether this is the empty list `()`.
    pub fn is_nil(&self) -> bool {
        matches!(self, Sexp::List(items, None) if items.is_empty())
    }

    /// The symbol, if this is one.
    pub fn as_sym(&self) -> Option<Symbol> {
        match self {
            Sexp::Sym(s) => Some(*s),
            _ => None,
        }
    }

    /// Whether this is a proper list headed by the symbol `name`.
    pub fn is_form(&self, name: &str) -> bool {
        match self {
            Sexp::List(items, None) => items
                .first()
                .and_then(Sexp::as_sym)
                .is_some_and(|s| s == Symbol::intern(name)),
            _ => false,
        }
    }
}

impl fmt::Display for Sexp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Sexp::Int(i) => write!(f, "{i}"),
            Sexp::Float(x) => write!(f, "{x}"),
            Sexp::Bool(true) => write!(f, "#t"),
            Sexp::Bool(false) => write!(f, "#f"),
            Sexp::Char(' ') => write!(f, "#\\space"),
            Sexp::Char('\n') => write!(f, "#\\newline"),
            Sexp::Char(c) => write!(f, "#\\{c}"),
            Sexp::Str(s) => write!(f, "{s:?}"),
            Sexp::Sym(s) => write!(f, "{s}"),
            Sexp::List(items, tail) => {
                write!(f, "(")?;
                for (i, x) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ")?;
                    }
                    write!(f, "{x}")?;
                }
                if let Some(t) = tail {
                    write!(f, " . {t}")?;
                }
                write!(f, ")")
            }
            Sexp::Vector(items) => {
                write!(f, "#(")?;
                for (i, x) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ")?;
                    }
                    write!(f, "{x}")?;
                }
                write!(f, ")")
            }
        }
    }
}
