//! Printing heap values (`display` / `write`).

use crate::machine::Machine;
use sting_areas::{ObjKind, Val};
use sting_value::Symbol;

/// Renders `v` in `display` style (strings unquoted).
pub fn display_val(m: &Machine, v: Val) -> String {
    render(m, v, false, 0)
}

/// Renders `v` in `write` style (strings quoted).
pub fn write_val(m: &Machine, v: Val) -> String {
    render(m, v, true, 0)
}

fn render(m: &Machine, v: Val, quote: bool, depth: usize) -> String {
    if depth > 64 {
        return "…".to_string();
    }
    match v {
        Val::Int(i) => i.to_string(),
        Val::Float(f) => {
            if f.fract() == 0.0 && f.is_finite() {
                format!("{f:.1}")
            } else {
                f.to_string()
            }
        }
        Val::Bool(true) => "#t".to_string(),
        Val::Bool(false) => "#f".to_string(),
        Val::Char(' ') => "#\\space".to_string(),
        Val::Char('\n') => "#\\newline".to_string(),
        Val::Char(c) => format!("#\\{c}"),
        Val::Sym(s) => Symbol::from_index(s).to_string(),
        Val::Nil => "()".to_string(),
        Val::Unit => "#!unspecified".to_string(),
        Val::Undef => "#!undefined".to_string(),
        Val::Eof => "#!eof".to_string(),
        Val::Native(slot) => m.heap.native(slot).to_string(),
        Val::Obj(gc) => match m.heap.kind(gc) {
            ObjKind::Str => {
                let s = m.heap.string_value(gc);
                if quote {
                    format!("{s:?}")
                } else {
                    s
                }
            }
            ObjKind::Pair => {
                let mut out = String::from("(");
                let mut cur = v;
                let mut first = true;
                let mut steps = 0;
                loop {
                    match cur {
                        Val::Obj(g) if m.heap.kind(g) == ObjKind::Pair => {
                            if !first {
                                out.push(' ');
                            }
                            first = false;
                            steps += 1;
                            if steps > 1000 {
                                out.push('…');
                                break;
                            }
                            out.push_str(&render(m, m.heap.car(g), quote, depth + 1));
                            cur = m.heap.cdr(g);
                        }
                        Val::Nil => break,
                        other => {
                            out.push_str(" . ");
                            out.push_str(&render(m, other, quote, depth + 1));
                            break;
                        }
                    }
                }
                out.push(')');
                out
            }
            ObjKind::Vector => {
                let mut out = String::from("#(");
                for i in 0..m.heap.len(gc) {
                    if i > 0 {
                        out.push(' ');
                    }
                    out.push_str(&render(m, m.heap.field(gc, i), quote, depth + 1));
                }
                out.push(')');
                out
            }
            ObjKind::Closure => {
                let code = m.heap.closure_code(gc) as usize;
                let name = m
                    .program
                    .codes
                    .get(code)
                    .and_then(|c| c.name)
                    .map(|s| s.to_string())
                    .unwrap_or_else(|| "lambda".to_string());
                format!("#<procedure {name}>")
            }
            ObjKind::Cell => format!(
                "#<cell {}>",
                render(m, m.heap.field(gc, 0), quote, depth + 1)
            ),
            ObjKind::FloatBox => render(m, m.heap.field(gc, 0), quote, depth),
            ObjKind::Frame => "#<environment>".to_string(),
        },
    }
}
