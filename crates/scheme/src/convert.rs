//! Conversion between heap values and substrate values.
//!
//! Values cross thread boundaries (thread results, tuple fields, global
//! bindings) as immutable substrate [`Value`]s — the copy-on-share
//! discipline that keeps each thread's areas independently collectable
//! (see DESIGN.md).  Closures convert structurally: code id plus the
//! converted environment chain.  List spines convert iteratively, so long
//! lists do not consume Rust stack.

use crate::error::SchemeError;
use crate::machine::Machine;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;
use sting_areas::{ObjKind, Val};
use sting_value::{Symbol, Value};

/// A closure lifted out of a heap: code id + converted environment.
#[derive(Debug)]
pub struct ClosureValue {
    /// Code object index in the program snapshot.
    pub code: u32,
    /// Converted environment chain (`Value::Nil` or a vector whose first
    /// element is the parent frame).
    pub env: Value,
}

/// Tag used for closure native handles.
pub const CLOSURE_TAG: &str = "scheme-closure";

/// Tag used for shared environment frames.
pub const FRAME_TAG: &str = "env-frame";

/// An environment frame lifted out of a heap and *shared*: every closure
/// converted from the same frame (in one conversion pass) references the
/// same slots, and mutation through any copy is visible to all — this is
/// what makes top-level closures with captured state (`make-counter`)
/// behave like the paper's shared-heap Scheme.
#[derive(Debug)]
pub struct SharedFrame {
    /// Parent frame (`Value::Nil` or another `env-frame` native).
    pub parent: Value,
    /// The frame's variable slots.
    pub slots: RwLock<Vec<Value>>,
}

/// Converts a heap value to a substrate value.
///
/// # Errors
///
/// Raises on cyclic data (the immutable substrate representation cannot
/// express cycles).
pub fn heap_to_value(m: &mut Machine, v: Val) -> Result<Value, SchemeError> {
    let mut path: Vec<u64> = Vec::new();
    let mut frames: HashMap<u64, Value> = HashMap::new();
    go_out(m, v, &mut path, &mut frames)
}

fn cyclic() -> SchemeError {
    SchemeError::runtime("cannot transfer cyclic data between threads")
}

fn go_out(
    m: &mut Machine,
    v: Val,
    path: &mut Vec<u64>,
    frames: &mut HashMap<u64, Value>,
) -> Result<Value, SchemeError> {
    Ok(match v {
        Val::Int(i) => Value::Int(i),
        Val::Float(f) => Value::Float(f),
        Val::Bool(b) => Value::Bool(b),
        Val::Char(c) => Value::Char(c),
        Val::Sym(s) => Value::Sym(Symbol::from_index(s)),
        Val::Nil => Value::Nil,
        Val::Unit | Val::Undef | Val::Eof => Value::Unit,
        Val::Native(slot) => m.heap.native(slot).clone(),
        Val::Obj(gc) => {
            let key = gc.word().0;
            // Frames are memoized (and may legitimately be self-referential
            // through closures in their slots): check the memo before the
            // cycle detector.
            if let Some(v) = frames.get(&key) {
                return Ok(v.clone());
            }
            if path.contains(&key) {
                return Err(cyclic());
            }
            path.push(key);
            let out = match m.heap.kind(gc) {
                ObjKind::Pair => {
                    // Walk the spine iteratively; recurse only on cars.
                    let mut spine: Vec<u64> = Vec::new();
                    let mut cars: Vec<Value> = Vec::new();
                    let mut cur = Val::Obj(gc);
                    let tail = loop {
                        match cur {
                            Val::Obj(g) if m.heap.kind(g) == ObjKind::Pair => {
                                if spine.contains(&g.word().0)
                                    || path.contains(&g.word().0) && g != gc
                                {
                                    return Err(cyclic());
                                }
                                spine.push(g.word().0);
                                let car = m.heap.car(g);
                                path.extend(&spine);
                                let cv = go_out(m, car, path, frames)?;
                                path.truncate(path.len() - spine.len());
                                cars.push(cv);
                                cur = m.heap.cdr(g);
                            }
                            other => break go_out(m, other, path, frames)?,
                        }
                    };
                    let mut acc = tail;
                    for c in cars.into_iter().rev() {
                        acc = Value::cons(c, acc);
                    }
                    acc
                }
                ObjKind::Vector => {
                    let len = m.heap.len(gc);
                    let mut items = Vec::with_capacity(len);
                    for i in 0..len {
                        let f = m.heap.field(gc, i);
                        items.push(go_out(m, f, path, frames)?);
                    }
                    Value::Vector(items.into())
                }
                ObjKind::Str => Value::from(m.heap.string_value(gc)),
                ObjKind::Cell => {
                    let inner = m.heap.field(gc, 0);
                    go_out(m, inner, path, frames)?
                }
                ObjKind::FloatBox => match m.heap.field(gc, 0) {
                    Val::Float(f) => Value::Float(f),
                    _ => Value::Float(0.0),
                },
                ObjKind::Closure => {
                    let code = m.heap.closure_code(gc);
                    let env = m.heap.closure_capture(gc, 0);
                    let env_v = go_out(m, env, path, frames)?;
                    Value::native(CLOSURE_TAG, Arc::new(ClosureValue { code, env: env_v }))
                }
                ObjKind::Frame => {
                    if let Some(v) = frames.get(&key) {
                        let out = v.clone();
                        path.pop();
                        return Ok(out);
                    }
                    // Parent chains are acyclic: convert the parent first,
                    // then memoize the (empty) frame so closures stored in
                    // the slots that capture this same frame share it.
                    let parent = go_out(m, m.heap.field(gc, 0), path, frames)?;
                    let shared = Arc::new(SharedFrame {
                        parent,
                        slots: RwLock::new(Vec::new()),
                    });
                    let fv = Value::native(FRAME_TAG, shared.clone());
                    frames.insert(key, fv.clone());
                    let len = m.heap.len(gc);
                    let mut slots = Vec::with_capacity(len.saturating_sub(1));
                    for i in 1..len {
                        let f = m.heap.field(gc, i);
                        slots.push(go_out(m, f, path, frames)?);
                    }
                    *shared.slots.write() = slots;
                    fv
                }
            };
            path.pop();
            out
        }
    })
}

/// Converts a substrate value into the machine's heap.  (Substrate values
/// are acyclic by construction, so this is total.)
pub fn value_to_heap(m: &mut Machine, v: &Value) -> Val {
    match v {
        Value::Unit => Val::Unit,
        Value::Bool(b) => Val::Bool(*b),
        Value::Int(i) => Val::Int(*i),
        Value::Float(f) => Val::Float(*f),
        Value::Char(c) => Val::Char(*c),
        Value::Sym(s) => Val::Sym(s.index()),
        Value::Nil => Val::Nil,
        Value::Str(s) => m.string(s),
        Value::Pair(_) => {
            // Iterative spine conversion, rooting intermediates on the
            // machine stack.
            let mut count = 0usize;
            let mut cur = v.clone();
            loop {
                match cur {
                    Value::Pair(p) => {
                        let hv = value_to_heap(m, &p.0);
                        m.push(hv);
                        count += 1;
                        cur = p.1.clone();
                    }
                    other => {
                        let t = value_to_heap(m, &other);
                        m.push(t);
                        break;
                    }
                }
            }
            let mut acc = m.pop();
            for _ in 0..count {
                let car = m.pop();
                acc = m.cons(car, acc);
            }
            acc
        }
        Value::Vector(items) => {
            let n = items.len();
            for item in items.iter() {
                let hv = value_to_heap(m, item);
                m.push(hv);
            }
            let start = m.stack.len() - n;
            let vals: Vec<Val> = m.stack[start..].to_vec();
            let out = m.vector(&vals);
            m.popn(n);
            out
        }
        Value::Native(h) => {
            if h.tag() == CLOSURE_TAG {
                let clo = h.downcast::<ClosureValue>().expect("closure tag");
                let env = value_to_heap(m, &clo.env);
                m.closure(clo.code, env)
            } else {
                m.native(v.clone())
            }
        }
    }
}
