//! Compiled code representation.
//!
//! A [`Program`] is an append-only pool of [`CodeObject`]s, constants and
//! global slots.  Each top-level evaluation extends a copy of the program
//! and produces a new immutable `Arc<Program>` snapshot; threads hold the
//! snapshot they were created against, so compilation never interferes
//! with running code.

use crate::sexp::Span;
use sting_value::{Symbol, Value};

/// One bytecode instruction.  Jump offsets are relative to the *next*
/// instruction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Op {
    /// Push constant `k` (index into [`Program::constants`]).
    Const(u32),
    /// Push a small integer without a constant-table entry.
    Int(i32),
    /// Push `#t` / `#f` / `()` / unspecified.
    True,
    /// Push `#f`.
    False,
    /// Push the empty list.
    Nil,
    /// Push the unspecified value.
    Unit,
    /// Push local variable: `depth` frames up, slot `idx`.
    Local(u16, u16),
    /// Pop into local variable; pushes the unspecified value.
    SetLocal(u16, u16),
    /// Push global slot.
    Global(u32),
    /// Pop into global slot; pushes the unspecified value.
    SetGlobal(u32),
    /// Push a closure over code object `c`, capturing the current frame.
    Closure(u32),
    /// Call with `n` arguments (stack: `… f a1 … an`).
    Call(u8),
    /// Tail call with `n` arguments (current frame is replaced).
    TailCall(u8),
    /// Return the top of stack from the current frame.
    Return,
    /// Unconditional relative jump.
    Jump(i32),
    /// Pop; jump if the popped value is `#f`.
    JumpIfFalse(i32),
    /// Pop and discard.
    Pop,
}

/// A compiled procedure body.
#[derive(Debug, Clone)]
pub struct CodeObject {
    /// Instructions.
    pub ops: Vec<Op>,
    /// Number of fixed parameters.
    pub arity: u8,
    /// Whether extra arguments are collected into a rest list.
    pub rest: bool,
    /// Diagnostic name.
    pub name: Option<Symbol>,
    /// Source position per instruction (parallel to `ops`; the span of the
    /// innermost enclosing surface form, [`Span::NONE`] when unknown).
    pub spans: Vec<Span>,
    /// Source position of the defining `lambda`/`define` form.
    pub span: Span,
}

impl CodeObject {
    /// The source span of instruction `ip`, falling back to the code
    /// object's definition span.
    pub fn span_at(&self, ip: usize) -> Span {
        self.spans
            .get(ip)
            .copied()
            .unwrap_or(Span::NONE)
            .or(self.span)
    }
}

/// An immutable snapshot of compiled code, constants and global names.
#[derive(Debug, Clone, Default)]
pub struct Program {
    /// Code objects; closures reference them by index.
    pub codes: Vec<CodeObject>,
    /// Literal constants (substrate values; converted into each thread's
    /// heap on demand).
    pub constants: Vec<Value>,
    /// Global slot names, in slot order.
    pub global_names: Vec<Symbol>,
}

impl Program {
    /// Index of (or new slot for) global `name`.
    pub fn global_slot(&mut self, name: Symbol) -> u32 {
        match self.global_names.iter().position(|s| *s == name) {
            Some(i) => i as u32,
            None => {
                self.global_names.push(name);
                (self.global_names.len() - 1) as u32
            }
        }
    }

    /// Adds a constant, deduplicating exact matches.
    pub fn add_constant(&mut self, v: Value) -> u32 {
        match self.constants.iter().position(|c| *c == v) {
            Some(i) => i as u32,
            None => {
                self.constants.push(v);
                (self.constants.len() - 1) as u32
            }
        }
    }

    /// Adds a code object, returning its index.
    pub fn add_code(&mut self, code: CodeObject) -> u32 {
        self.codes.push(code);
        (self.codes.len() - 1) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_slots_are_stable() {
        let mut p = Program::default();
        let a = p.global_slot(Symbol::intern("a"));
        let b = p.global_slot(Symbol::intern("b"));
        assert_ne!(a, b);
        assert_eq!(p.global_slot(Symbol::intern("a")), a);
    }

    #[test]
    fn constants_dedup() {
        let mut p = Program::default();
        let k1 = p.add_constant(Value::from(5));
        let k2 = p.add_constant(Value::from(5));
        let k3 = p.add_constant(Value::from("x"));
        assert_eq!(k1, k2);
        assert_ne!(k1, k3);
    }
}
