//! The reader: text → s-expressions.

use crate::error::SchemeError;
use crate::sexp::{Sexp, Span};

struct Reader<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
    /// Byte offset of the start of the current line, for column tracking.
    line_start: usize,
}

/// Reads every datum in `src`.
///
/// # Errors
///
/// [`SchemeError::Read`] on malformed input (unbalanced parentheses, bad
/// literals, stray dots).
pub fn read_all(src: &str) -> Result<Vec<Sexp>, SchemeError> {
    let mut r = Reader {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        line_start: 0,
    };
    let mut out = Vec::new();
    loop {
        r.skip_ws();
        if r.at_end() {
            return Ok(out);
        }
        out.push(r.datum()?);
    }
}

/// Reads exactly one datum.
///
/// # Errors
///
/// [`SchemeError::Read`] on malformed input or trailing junk.
pub fn read_one(src: &str) -> Result<Sexp, SchemeError> {
    let all = read_all(src)?;
    match all.len() {
        1 => Ok(all.into_iter().next().expect("len checked")),
        0 => Err(SchemeError::Read("empty input".to_string())),
        n => Err(SchemeError::Read(format!("expected one datum, found {n}"))),
    }
}

impl Reader<'_> {
    fn err(&self, msg: &str) -> SchemeError {
        SchemeError::Read(format!("line {}: {}", self.line, msg))
    }

    /// The position of the *next* byte, 1-based.
    fn here(&self) -> Span {
        Span::at(self.line as u32, (self.pos - self.line_start + 1) as u32)
    }

    fn at_end(&self) -> bool {
        self.pos >= self.src.len()
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.line_start = self.pos;
        }
        Some(b)
    }

    fn skip_ws(&mut self) {
        loop {
            match self.peek() {
                Some(b) if b.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b';') => {
                    while let Some(b) = self.bump() {
                        if b == b'\n' {
                            break;
                        }
                    }
                }
                Some(b'#') if self.src.get(self.pos + 1) == Some(&b'|') => {
                    // Block comment, nestable.
                    self.pos += 2;
                    let mut depth = 1;
                    while depth > 0 {
                        match self.bump() {
                            None => return,
                            Some(b'|') if self.peek() == Some(b'#') => {
                                self.bump();
                                depth -= 1;
                            }
                            Some(b'#') if self.peek() == Some(b'|') => {
                                self.bump();
                                depth += 1;
                            }
                            _ => {}
                        }
                    }
                }
                _ => return,
            }
        }
    }

    fn datum(&mut self) -> Result<Sexp, SchemeError> {
        self.skip_ws();
        let Some(b) = self.peek() else {
            return Err(self.err("unexpected end of input"));
        };
        let span = self.here();
        match b {
            b'(' | b'[' => {
                self.bump();
                self.list(if b == b'(' { b')' } else { b']' }, span)
            }
            b')' | b']' => Err(self.err("unexpected close parenthesis")),
            b'\'' => {
                self.bump();
                Ok(Sexp::list_at(vec![Sexp::sym("quote"), self.datum()?], span))
            }
            b'`' => {
                self.bump();
                Ok(Sexp::list_at(
                    vec![Sexp::sym("quasiquote"), self.datum()?],
                    span,
                ))
            }
            b',' => {
                self.bump();
                if self.peek() == Some(b'@') {
                    self.bump();
                    Ok(Sexp::list_at(
                        vec![Sexp::sym("unquote-splicing"), self.datum()?],
                        span,
                    ))
                } else {
                    Ok(Sexp::list_at(
                        vec![Sexp::sym("unquote"), self.datum()?],
                        span,
                    ))
                }
            }
            b'"' => self.string(),
            b'#' => self.hash(),
            _ => self.atom(),
        }
    }

    fn list(&mut self, close: u8, span: Span) -> Result<Sexp, SchemeError> {
        let mut items = Vec::new();
        let tail = None;
        loop {
            self.skip_ws();
            match self.peek() {
                None => return Err(self.err("unterminated list")),
                Some(b) if b == close => {
                    self.bump();
                    return Ok(Sexp::List(items, tail.map(Box::new), span));
                }
                Some(b')') | Some(b']') => return Err(self.err("mismatched close parenthesis")),
                Some(b'.') if self.is_lone_dot() => {
                    if items.is_empty() {
                        return Err(self.err("dot at start of list"));
                    }
                    self.bump();
                    let t = self.datum()?;
                    self.skip_ws();
                    if self.peek() != Some(close) {
                        return Err(self.err("more than one datum after dot"));
                    }
                    self.bump();
                    // Normalize (a . (b c)) to (a b c).
                    return Ok(match t {
                        Sexp::List(mut more, t2, _) => {
                            items.append(&mut more);
                            Sexp::List(items, t2, span)
                        }
                        other => Sexp::List(items, Some(Box::new(other)), span),
                    });
                }
                _ => {
                    let _ = tail;
                    items.push(self.datum()?);
                }
            }
        }
    }

    fn is_lone_dot(&self) -> bool {
        self.src.get(self.pos) == Some(&b'.')
            && self
                .src
                .get(self.pos + 1)
                .is_none_or(|b| b.is_ascii_whitespace() || *b == b')' || *b == b']')
    }

    fn string(&mut self) -> Result<Sexp, SchemeError> {
        self.bump(); // opening quote
        let mut s = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(Sexp::Str(s)),
                Some(b'\\') => match self.bump() {
                    Some(b'n') => s.push('\n'),
                    Some(b't') => s.push('\t'),
                    Some(b'r') => s.push('\r'),
                    Some(b'\\') => s.push('\\'),
                    Some(b'"') => s.push('"'),
                    Some(b'0') => s.push('\0'),
                    other => {
                        return Err(self.err(&format!("bad string escape {other:?}")));
                    }
                },
                Some(b) => {
                    // Collect the full UTF-8 sequence.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    for _ in 1..width {
                        self.bump();
                    }
                    let chunk = std::str::from_utf8(&self.src[start..start + width])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    s.push_str(chunk);
                }
            }
        }
    }

    fn hash(&mut self) -> Result<Sexp, SchemeError> {
        self.bump(); // '#'
        match self.peek() {
            Some(b't') => {
                self.bump();
                Ok(Sexp::Bool(true))
            }
            Some(b'f') => {
                self.bump();
                Ok(Sexp::Bool(false))
            }
            Some(b'(') => {
                let span = self.here();
                self.bump();
                match self.list(b')', span)? {
                    Sexp::List(items, None, _) => Ok(Sexp::Vector(items)),
                    _ => Err(self.err("dotted vector literal")),
                }
            }
            Some(b'\\') => {
                self.bump();
                let token = self.atom_text();
                if token.is_empty() {
                    // A literal punctuation character like #\( or #\space.
                    return match self.bump() {
                        Some(b) => Ok(Sexp::Char(b as char)),
                        None => Err(self.err("unterminated character literal")),
                    };
                }
                match token.as_str() {
                    "space" => Ok(Sexp::Char(' ')),
                    "newline" => Ok(Sexp::Char('\n')),
                    "tab" => Ok(Sexp::Char('\t')),
                    t => {
                        let mut chars = t.chars();
                        match (chars.next(), chars.next()) {
                            (Some(c), None) => Ok(Sexp::Char(c)),
                            _ => Err(self.err(&format!("unknown character literal #\\{t}"))),
                        }
                    }
                }
            }
            other => Err(self.err(&format!("unknown # syntax {other:?}"))),
        }
    }

    fn atom_text(&mut self) -> String {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_whitespace()
                || matches!(b, b'(' | b')' | b'[' | b']' | b'"' | b';' | b'\'')
            {
                break;
            }
            self.bump();
        }
        String::from_utf8_lossy(&self.src[start..self.pos]).into_owned()
    }

    fn atom(&mut self) -> Result<Sexp, SchemeError> {
        let t = self.atom_text();
        if t.is_empty() {
            return Err(self.err("empty token"));
        }
        if let Ok(i) = t.parse::<i64>() {
            return Ok(Sexp::Int(i));
        }
        // Floats must contain a digit (so `.`, `...`, `+`, `-` stay symbols).
        if t.bytes().any(|b| b.is_ascii_digit()) {
            if let Ok(f) = t.parse::<f64>() {
                return Ok(Sexp::Float(f));
            }
        }
        Ok(Sexp::sym(&t))
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rt(src: &str) -> String {
        read_one(src).unwrap().to_string()
    }

    #[test]
    fn atoms() {
        assert_eq!(rt("42"), "42");
        assert_eq!(rt("-17"), "-17");
        assert_eq!(rt("2.5"), "2.5");
        assert_eq!(rt("#t"), "#t");
        assert_eq!(rt("#f"), "#f");
        assert_eq!(rt("#\\a"), "#\\a");
        assert_eq!(rt("#\\space"), "#\\space");
        assert_eq!(rt("foo-bar"), "foo-bar");
        assert_eq!(rt("+"), "+");
        assert_eq!(rt("\"hi\\nthere\""), "\"hi\\nthere\"");
    }

    #[test]
    fn lists_and_vectors() {
        assert_eq!(rt("(1 2 3)"), "(1 2 3)");
        assert_eq!(rt("( a ( b c ) )"), "(a (b c))");
        assert_eq!(rt("(a . b)"), "(a . b)");
        assert_eq!(rt("(a b . c)"), "(a b . c)");
        assert_eq!(rt("(a . (b c))"), "(a b c)");
        assert_eq!(rt("#(1 2)"), "#(1 2)");
        assert_eq!(rt("[a b]"), "(a b)");
        assert_eq!(rt("()"), "()");
    }

    #[test]
    fn quote_family() {
        assert_eq!(rt("'x"), "(quote x)");
        assert_eq!(rt("`x"), "(quasiquote x)");
        assert_eq!(rt(",x"), "(unquote x)");
        assert_eq!(rt(",@x"), "(unquote-splicing x)");
        assert_eq!(rt("'(1 2)"), "(quote (1 2))");
    }

    #[test]
    fn comments() {
        let all = read_all("1 ; comment\n2 #| block #| nested |# |# 3").unwrap();
        assert_eq!(all.len(), 3);
    }

    #[test]
    fn errors() {
        assert!(read_one("(").is_err());
        assert!(read_one(")").is_err());
        assert!(read_one("\"abc").is_err());
        assert!(read_one("(. x)").is_err());
        assert!(read_one("(a . b c)").is_err());
        assert!(read_one("1 2").is_err());
        assert!(read_one("").is_err());
    }

    #[test]
    fn unicode_strings() {
        assert_eq!(read_one("\"λx\"").unwrap(), Sexp::Str("λx".to_string()));
    }

    #[test]
    fn list_spans() {
        let all = read_all("(a b)\n  (c (d))").unwrap();
        assert_eq!(all[0].span(), Span::at(1, 1));
        assert_eq!(all[1].span(), Span::at(2, 3));
        let Sexp::List(items, None, _) = &all[1] else {
            panic!("expected a list");
        };
        assert_eq!(items[1].span(), Span::at(2, 6));
        // Quote sugar carries the quote mark's position.
        assert_eq!(read_one("\n'x").unwrap().span(), Span::at(2, 1));
    }

    #[test]
    fn dots_and_signs_are_symbols() {
        assert_eq!(rt("..."), "...");
        assert_eq!(rt("-"), "-");
        assert_eq!(rt("1+"), "1+");
    }
}
