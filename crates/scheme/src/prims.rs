//! Primitive procedures.
//!
//! Primitives are substrate values (`Value::native("prim", …)`) installed
//! into the global environment by [`install`]; the machine dispatches them
//! through an internal table.  Concurrency primitives live in
//! [`crate::concurrency`] but register through the same table.

use crate::concurrency;
use crate::error::SchemeError;
use crate::machine::Machine;
use crate::print;
use std::sync::Arc;
use sting_areas::{ObjKind, Val};
use sting_value::{Symbol, Value};

/// A primitive reference (the payload of a `"prim"` native handle).
#[derive(Debug)]
pub struct Prim {
    /// Index into the primitive table.
    pub id: u16,
}

pub(crate) type PrimFn = fn(&mut Machine, usize) -> Result<Val, SchemeError>;

pub(crate) struct Def {
    pub name: &'static str,
    pub min: usize,
    pub max: Option<usize>,
    pub f: PrimFn,
}

/// Raises a Scheme runtime error.
pub(crate) fn rerr(msg: impl Into<String>) -> SchemeError {
    SchemeError::runtime(msg)
}

// ---------------------------------------------------------------------
// Argument helpers
// ---------------------------------------------------------------------

pub(crate) fn want_int(m: &Machine, argc: usize, i: usize, who: &str) -> Result<i64, SchemeError> {
    match m.arg(argc, i) {
        Val::Int(n) => Ok(n),
        v => Err(rerr(format!(
            "{who}: expected integer, got {}",
            print::display_val(m, v)
        ))),
    }
}

pub(crate) fn want_sym(
    m: &Machine,
    argc: usize,
    i: usize,
    who: &str,
) -> Result<Symbol, SchemeError> {
    match m.arg(argc, i) {
        Val::Sym(s) => Ok(Symbol::from_index(s)),
        v => Err(rerr(format!(
            "{who}: expected symbol, got {}",
            print::display_val(m, v)
        ))),
    }
}

pub(crate) fn want_string(
    m: &Machine,
    argc: usize,
    i: usize,
    who: &str,
) -> Result<String, SchemeError> {
    match m.arg(argc, i) {
        Val::Obj(gc) if m.heap.kind(gc) == ObjKind::Str => Ok(m.heap.string_value(gc)),
        v => Err(rerr(format!(
            "{who}: expected string, got {}",
            print::display_val(m, v)
        ))),
    }
}

/// Reads a proper list argument into a `Vec<Val>`.
pub(crate) fn want_list(
    m: &Machine,
    argc: usize,
    i: usize,
    who: &str,
) -> Result<Vec<Val>, SchemeError> {
    let mut out = Vec::new();
    let mut cur = m.arg(argc, i);
    loop {
        match cur {
            Val::Nil => return Ok(out),
            Val::Obj(gc) if m.heap.kind(gc) == ObjKind::Pair => {
                out.push(m.heap.car(gc));
                cur = m.heap.cdr(gc);
            }
            _ => return Err(rerr(format!("{who}: expected a proper list"))),
        }
    }
}

#[derive(Clone, Copy, PartialEq)]
pub(crate) enum Num {
    I(i64),
    F(f64),
}

pub(crate) fn want_num(m: &Machine, argc: usize, i: usize, who: &str) -> Result<Num, SchemeError> {
    match m.arg(argc, i) {
        Val::Int(n) => Ok(Num::I(n)),
        Val::Float(f) => Ok(Num::F(f)),
        v => Err(rerr(format!(
            "{who}: expected number, got {}",
            print::display_val(m, v)
        ))),
    }
}

impl Num {
    fn to_val(self) -> Val {
        match self {
            Num::I(i) => Val::Int(i),
            Num::F(f) => Val::Float(f),
        }
    }
    fn as_f64(self) -> f64 {
        match self {
            Num::I(i) => i as f64,
            Num::F(f) => f,
        }
    }
}

// ---------------------------------------------------------------------
// Equality
// ---------------------------------------------------------------------

/// `eqv?`: identity for objects, value equality for immediates.
pub(crate) fn eqv(_m: &Machine, a: Val, b: Val) -> bool {
    match (a, b) {
        (Val::Obj(x), Val::Obj(y)) => x == y,
        (Val::Float(x), Val::Float(y)) => x.to_bits() == y.to_bits(),
        _ => a == b,
    }
}

/// `equal?`: structural equality.
pub(crate) fn equal(m: &Machine, a: Val, b: Val) -> bool {
    equal_d(m, a, b, 0)
}

fn equal_d(m: &Machine, a: Val, b: Val, depth: usize) -> bool {
    if depth > 10_000 {
        return false;
    }
    match (a, b) {
        (Val::Obj(x), Val::Obj(y)) => {
            if x == y {
                return true;
            }
            let (ka, kb) = (m.heap.kind(x), m.heap.kind(y));
            if ka != kb {
                return false;
            }
            match ka {
                ObjKind::Pair => {
                    equal_d(m, m.heap.car(x), m.heap.car(y), depth + 1)
                        && equal_d(m, m.heap.cdr(x), m.heap.cdr(y), depth + 1)
                }
                ObjKind::Vector => {
                    m.heap.len(x) == m.heap.len(y)
                        && (0..m.heap.len(x))
                            .all(|i| equal_d(m, m.heap.field(x, i), m.heap.field(y, i), depth + 1))
                }
                ObjKind::Str => m.heap.string_value(x) == m.heap.string_value(y),
                _ => false,
            }
        }
        _ => eqv(m, a, b),
    }
}

// ---------------------------------------------------------------------
// The table
// ---------------------------------------------------------------------

macro_rules! arith_fold {
    ($name:literal, $m:expr, $argc:expr, $init:expr, $int_op:expr, $f_op:expr) => {{
        let m = $m;
        let argc = $argc;
        let mut acc = want_num(m, argc, 0, $name)?;
        for i in 1..argc {
            let b = want_num(m, argc, i, $name)?;
            acc = match (acc, b) {
                (Num::I(x), Num::I(y)) => $int_op(x, y)
                    .map(Num::I)
                    .ok_or_else(|| rerr(concat!($name, ": overflow")))?,
                (x, y) => Num::F($f_op(x.as_f64(), y.as_f64())),
            };
        }
        Ok(acc.to_val())
    }};
}

fn prim_add(m: &mut Machine, argc: usize) -> Result<Val, SchemeError> {
    if argc == 0 {
        return Ok(Val::Int(0));
    }
    arith_fold!(
        "+",
        m,
        argc,
        0,
        |x: i64, y: i64| x.checked_add(y),
        |x, y| x + y
    )
}

fn prim_sub(m: &mut Machine, argc: usize) -> Result<Val, SchemeError> {
    if argc == 1 {
        return Ok(match want_num(m, argc, 0, "-")? {
            Num::I(i) => Val::Int(-i),
            Num::F(f) => Val::Float(-f),
        });
    }
    arith_fold!(
        "-",
        m,
        argc,
        0,
        |x: i64, y: i64| x.checked_sub(y),
        |x, y| x - y
    )
}

fn prim_mul(m: &mut Machine, argc: usize) -> Result<Val, SchemeError> {
    if argc == 0 {
        return Ok(Val::Int(1));
    }
    arith_fold!(
        "*",
        m,
        argc,
        0,
        |x: i64, y: i64| x.checked_mul(y),
        |x, y| x * y
    )
}

fn prim_div(m: &mut Machine, argc: usize) -> Result<Val, SchemeError> {
    let mut acc = want_num(m, argc, 0, "/")?.as_f64();
    if argc == 1 {
        if acc == 0.0 {
            return Err(rerr("/: division by zero"));
        }
        return Ok(Val::Float(1.0 / acc));
    }
    for i in 1..argc {
        let b = want_num(m, argc, i, "/")?.as_f64();
        if b == 0.0 {
            return Err(rerr("/: division by zero"));
        }
        acc /= b;
    }
    // Return an integer when exact.
    if acc.fract() == 0.0 && acc.abs() < 9e15 {
        Ok(Val::Int(acc as i64))
    } else {
        Ok(Val::Float(acc))
    }
}

fn prim_quotient(m: &mut Machine, argc: usize) -> Result<Val, SchemeError> {
    let a = want_int(m, argc, 0, "quotient")?;
    let b = want_int(m, argc, 1, "quotient")?;
    if b == 0 {
        return Err(rerr("quotient: division by zero"));
    }
    Ok(Val::Int(a / b))
}

fn prim_remainder(m: &mut Machine, argc: usize) -> Result<Val, SchemeError> {
    let a = want_int(m, argc, 0, "remainder")?;
    let b = want_int(m, argc, 1, "remainder")?;
    if b == 0 {
        return Err(rerr("remainder: division by zero"));
    }
    Ok(Val::Int(a % b))
}

macro_rules! cmp_chain {
    ($name:literal, $op:tt) => {
        |m: &mut Machine, argc: usize| -> Result<Val, SchemeError> {
            for i in 0..argc - 1 {
                let a = want_num(m, argc, i, $name)?.as_f64();
                let b = want_num(m, argc, i + 1, $name)?.as_f64();
                // Negated on purpose: NaN compares false against anything,
                // so the chain correctly yields #f (R7RS semantics).
                #[allow(clippy::neg_cmp_op_on_partial_ord)]
                if !(a $op b) {
                    return Ok(Val::Bool(false));
                }
            }
            Ok(Val::Bool(true))
        }
    };
}

fn prim_display(m: &mut Machine, argc: usize) -> Result<Val, SchemeError> {
    let mut out = String::new();
    for i in 0..argc {
        out.push_str(&print::display_val(m, m.arg(argc, i)));
    }
    print!("{out}");
    use std::io::Write;
    let _ = std::io::stdout().flush();
    Ok(Val::Unit)
}

fn prim_error(m: &mut Machine, argc: usize) -> Result<Val, SchemeError> {
    let mut parts = vec![Value::sym("error")];
    for i in 0..argc {
        let v = m.arg(argc, i);
        parts.push(m.to_value(v)?);
    }
    Err(SchemeError::Raised(Value::list(parts)))
}

fn prim_raise(m: &mut Machine, argc: usize) -> Result<Val, SchemeError> {
    let v = m.arg(argc, 0);
    let sv = m.to_value(v)?;
    Err(SchemeError::Raised(sv))
}

fn prim_try(m: &mut Machine, argc: usize) -> Result<Val, SchemeError> {
    let body = m.arg(argc, 0);
    let handler = m.arg(argc, 1);
    // Root the handler across the body run.
    m.push(handler);
    let r = m.apply(body, &[]);
    let handler = m.pop();
    match r {
        Ok(v) => Ok(v),
        Err(SchemeError::Raised(exn)) => {
            let hv = m.from_value(&exn);
            m.apply(handler, &[hv])
        }
        Err(other) => Err(other),
    }
}

fn prim_apply(m: &mut Machine, argc: usize) -> Result<Val, SchemeError> {
    let f = m.arg(argc, 0);
    let mut args: Vec<Val> = (1..argc - 1).map(|i| m.arg(argc, i)).collect();
    args.extend(want_list(m, argc, argc - 1, "apply")?);
    m.apply(f, &args)
}

fn prim_map(m: &mut Machine, argc: usize) -> Result<Val, SchemeError> {
    // `f` and the lists live on the machine stack at fixed positions below
    // `base`, so they are GC roots; re-read them every iteration because
    // collections move objects.
    let base = m.stack.len();
    let fpos = base - argc;
    let n = (1..argc)
        .map(|i| want_list(m, argc, i, "map").map(|l| l.len()))
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .min()
        .unwrap_or(0);
    let mut count = 0;
    for k in 0..n {
        let f = m.stack[fpos];
        let args: Vec<Val> = (1..argc)
            .map(|i| nth_of_list_stack(m, fpos + i, k))
            .collect::<Result<_, _>>()?;
        let v = m.apply(f, &args)?;
        m.push(v); // keep results rooted
        count += 1;
    }
    Ok(m.list_from_stack(count))
}

/// The `k`-th element of the list stored at absolute stack slot `pos`.
fn nth_of_list_stack(m: &Machine, pos: usize, k: usize) -> Result<Val, SchemeError> {
    let mut cur = m.stack[pos];
    for _ in 0..k {
        match cur {
            Val::Obj(gc) if m.heap.kind(gc) == ObjKind::Pair => cur = m.heap.cdr(gc),
            _ => return Err(rerr("map: list too short")),
        }
    }
    match cur {
        Val::Obj(gc) if m.heap.kind(gc) == ObjKind::Pair => Ok(m.heap.car(gc)),
        _ => Err(rerr("map: list too short")),
    }
}

fn prim_for_each(m: &mut Machine, argc: usize) -> Result<Val, SchemeError> {
    let base = m.stack.len();
    let fpos = base - argc;
    let n = want_list(m, argc, 1, "for-each")?.len();
    for k in 0..n {
        let f = m.stack[fpos];
        let x = nth_of_list_stack(m, fpos + 1, k)?;
        m.apply(f, &[x])?;
    }
    Ok(Val::Unit)
}

/// Monotonic milliseconds since an arbitrary epoch (for benchmarks).
fn prim_runtime_ms(_m: &mut Machine, _argc: usize) -> Result<Val, SchemeError> {
    use std::sync::OnceLock;
    use std::time::Instant;
    static START: OnceLock<Instant> = OnceLock::new();
    let start = *START.get_or_init(Instant::now);
    Ok(Val::Int(start.elapsed().as_millis() as i64))
}

fn prim_gensym(m: &mut Machine, _argc: usize) -> Result<Val, SchemeError> {
    use std::sync::atomic::{AtomicU64, Ordering};
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    let s = Symbol::intern(&format!("%g{n}"));
    let _ = m;
    Ok(Val::Sym(s.index()))
}

pub(crate) fn defs() -> Vec<Def> {
    let mut v: Vec<Def> = Vec::new();
    macro_rules! def {
        ($name:literal, $min:expr, $max:expr, $f:expr) => {
            v.push(Def {
                name: $name,
                min: $min,
                max: $max,
                f: $f,
            });
        };
    }

    // Numbers.
    def!("+", 0, None, prim_add);
    def!("-", 1, None, prim_sub);
    def!("*", 0, None, prim_mul);
    def!("/", 1, None, prim_div);
    def!("quotient", 2, Some(2), prim_quotient);
    def!("remainder", 2, Some(2), prim_remainder);
    def!("modulo", 2, Some(2), |m, a| {
        let x = want_int(m, a, 0, "modulo")?;
        let y = want_int(m, a, 1, "modulo")?;
        if y == 0 {
            return Err(rerr("modulo: division by zero"));
        }
        // Result takes the sign of the divisor (R7RS floor-remainder).
        let r = x.rem_euclid(y.abs());
        Ok(Val::Int(if y < 0 && r != 0 { r + y } else { r }))
    });
    def!("=", 2, None, cmp_chain!("=", ==));
    def!("<", 2, None, cmp_chain!("<", <));
    def!(">", 2, None, cmp_chain!(">", >));
    def!("<=", 2, None, cmp_chain!("<=", <=));
    def!(">=", 2, None, cmp_chain!(">=", >=));
    def!("zero?", 1, Some(1), |m, a| Ok(Val::Bool(
        want_num(m, a, 0, "zero?")?.as_f64() == 0.0
    )));
    def!("positive?", 1, Some(1), |m, a| Ok(Val::Bool(
        want_num(m, a, 0, "positive?")?.as_f64() > 0.0
    )));
    def!("negative?", 1, Some(1), |m, a| Ok(Val::Bool(
        want_num(m, a, 0, "negative?")?.as_f64() < 0.0
    )));
    def!("even?", 1, Some(1), |m, a| Ok(Val::Bool(
        want_int(m, a, 0, "even?")? % 2 == 0
    )));
    def!("odd?", 1, Some(1), |m, a| Ok(Val::Bool(
        want_int(m, a, 0, "odd?")? % 2 != 0
    )));
    def!("abs", 1, Some(1), |m, a| Ok(
        match want_num(m, a, 0, "abs")? {
            Num::I(i) => Val::Int(i.abs()),
            Num::F(f) => Val::Float(f.abs()),
        }
    ));
    def!("min", 1, None, |m, a| {
        let mut best = want_num(m, a, 0, "min")?;
        for i in 1..a {
            let x = want_num(m, a, i, "min")?;
            if x.as_f64() < best.as_f64() {
                best = x;
            }
        }
        Ok(best.to_val())
    });
    def!("max", 1, None, |m, a| {
        let mut best = want_num(m, a, 0, "max")?;
        for i in 1..a {
            let x = want_num(m, a, i, "max")?;
            if x.as_f64() > best.as_f64() {
                best = x;
            }
        }
        Ok(best.to_val())
    });
    def!("1+", 1, Some(1), |m, a| Ok(Val::Int(
        want_int(m, a, 0, "1+")?
            .checked_add(1)
            .ok_or_else(|| rerr("1+: overflow"))?
    )));
    def!("1-", 1, Some(1), |m, a| Ok(Val::Int(
        want_int(m, a, 0, "1-")?
            .checked_sub(1)
            .ok_or_else(|| rerr("1-: overflow"))?
    )));
    def!("sqrt", 1, Some(1), |m, a| Ok(Val::Float(
        want_num(m, a, 0, "sqrt")?.as_f64().sqrt()
    )));
    def!("expt", 2, Some(2), |m, a| {
        match (want_num(m, a, 0, "expt")?, want_num(m, a, 1, "expt")?) {
            (Num::I(b), Num::I(e)) if (0..=62).contains(&e) => Ok(Val::Int(
                b.checked_pow(e as u32)
                    .ok_or_else(|| rerr("expt: overflow"))?,
            )),
            (b, e) => Ok(Val::Float(b.as_f64().powf(e.as_f64()))),
        }
    });
    def!("floor", 1, Some(1), |m, a| Ok(
        match want_num(m, a, 0, "floor")? {
            Num::I(i) => Val::Int(i),
            Num::F(f) => Val::Int(f.floor() as i64),
        }
    ));
    def!("number?", 1, Some(1), |m, a| Ok(Val::Bool(matches!(
        m.arg(a, 0),
        Val::Int(_) | Val::Float(_)
    ))));
    def!("integer?", 1, Some(1), |m, a| Ok(Val::Bool(matches!(
        m.arg(a, 0),
        Val::Int(_)
    ))));
    def!("number->string", 1, Some(1), |m, a| {
        let s = print::display_val(m, m.arg(a, 0));
        Ok(m.string(&s))
    });
    def!("string->number", 1, Some(1), |m, a| {
        let s = want_string(m, a, 0, "string->number")?;
        if let Ok(i) = s.parse::<i64>() {
            Ok(Val::Int(i))
        } else if let Ok(f) = s.parse::<f64>() {
            Ok(Val::Float(f))
        } else {
            Ok(Val::Bool(false))
        }
    });
    def!("random", 1, Some(1), |m, a| {
        // xorshift over a per-call seed; deterministic enough for demos.
        use std::sync::atomic::{AtomicU64, Ordering};
        static SEED: AtomicU64 = AtomicU64::new(0x9E3779B97F4A7C15);
        let n = want_int(m, a, 0, "random")?;
        if n <= 0 {
            return Err(rerr("random: bound must be positive"));
        }
        let mut x = SEED.fetch_add(0x9E3779B97F4A7C15, Ordering::Relaxed);
        x ^= x >> 30;
        x = x.wrapping_mul(0xBF58476D1CE4E5B9);
        x ^= x >> 27;
        Ok(Val::Int((x % n as u64) as i64))
    });

    // Predicates / equality.
    def!("not", 1, Some(1), |m, a| Ok(Val::Bool(
        m.arg(a, 0).is_false()
    )));
    def!("eq?", 2, Some(2), |m, a| Ok(Val::Bool(eqv(
        m,
        m.arg(a, 0),
        m.arg(a, 1)
    ))));
    def!("eqv?", 2, Some(2), |m, a| Ok(Val::Bool(eqv(
        m,
        m.arg(a, 0),
        m.arg(a, 1)
    ))));
    def!("equal?", 2, Some(2), |m, a| Ok(Val::Bool(equal(
        m,
        m.arg(a, 0),
        m.arg(a, 1)
    ))));
    def!("boolean?", 1, Some(1), |m, a| Ok(Val::Bool(matches!(
        m.arg(a, 0),
        Val::Bool(_)
    ))));
    def!("symbol?", 1, Some(1), |m, a| Ok(Val::Bool(matches!(
        m.arg(a, 0),
        Val::Sym(_)
    ))));
    def!("char?", 1, Some(1), |m, a| Ok(Val::Bool(matches!(
        m.arg(a, 0),
        Val::Char(_)
    ))));
    def!("null?", 1, Some(1), |m, a| Ok(Val::Bool(matches!(
        m.arg(a, 0),
        Val::Nil
    ))));
    def!("pair?", 1, Some(1), |m, a| Ok(Val::Bool(matches!(
        m.arg(a, 0), Val::Obj(gc) if m.heap.kind(gc) == ObjKind::Pair
    ))));
    def!("string?", 1, Some(1), |m, a| Ok(Val::Bool(matches!(
        m.arg(a, 0), Val::Obj(gc) if m.heap.kind(gc) == ObjKind::Str
    ))));
    def!("vector?", 1, Some(1), |m, a| Ok(Val::Bool(matches!(
        m.arg(a, 0), Val::Obj(gc) if m.heap.kind(gc) == ObjKind::Vector
    ))));
    def!("procedure?", 1, Some(1), |m, a| Ok(Val::Bool(
        match m.arg(a, 0) {
            Val::Obj(gc) => m.heap.kind(gc) == ObjKind::Closure,
            Val::Native(slot) => m.heap.native(slot).native_as::<Prim>().is_some(),
            _ => false,
        }
    )));

    // Pairs and lists.
    def!("cons", 2, Some(2), |m, a| Ok(
        m.cons(m.arg(a, 0), m.arg(a, 1))
    ));
    def!("car", 1, Some(1), |m, a| match m.arg(a, 0) {
        Val::Obj(gc) if m.heap.kind(gc) == ObjKind::Pair => Ok(m.heap.car(gc)),
        v => Err(rerr(format!(
            "car: expected pair, got {}",
            print::display_val(m, v)
        ))),
    });
    def!("cdr", 1, Some(1), |m, a| match m.arg(a, 0) {
        Val::Obj(gc) if m.heap.kind(gc) == ObjKind::Pair => Ok(m.heap.cdr(gc)),
        v => Err(rerr(format!(
            "cdr: expected pair, got {}",
            print::display_val(m, v)
        ))),
    });
    def!("set-car!", 2, Some(2), |m, a| match m.arg(a, 0) {
        Val::Obj(gc) if m.heap.kind(gc) == ObjKind::Pair => {
            m.set_field_rooted(gc, 0, m.arg(a, 1));
            Ok(Val::Unit)
        }
        _ => Err(rerr("set-car!: expected pair")),
    });
    def!("set-cdr!", 2, Some(2), |m, a| match m.arg(a, 0) {
        Val::Obj(gc) if m.heap.kind(gc) == ObjKind::Pair => {
            m.set_field_rooted(gc, 1, m.arg(a, 1));
            Ok(Val::Unit)
        }
        _ => Err(rerr("set-cdr!: expected pair")),
    });
    def!("caar", 1, Some(1), |m, a| cxr(m, a, &[0, 0]));
    def!("cadr", 1, Some(1), |m, a| cxr(m, a, &[1, 0]));
    def!("cdar", 1, Some(1), |m, a| cxr(m, a, &[0, 1]));
    def!("cddr", 1, Some(1), |m, a| cxr(m, a, &[1, 1]));
    def!("caddr", 1, Some(1), |m, a| cxr(m, a, &[1, 1, 0]));
    def!("list", 0, None, |m, a| {
        // Args are already on the stack in order.
        let items: Vec<Val> = (0..a).map(|i| m.arg(a, i)).collect();
        for &it in &items {
            m.push(it);
        }
        Ok(m.list_from_stack(a))
    });
    def!("length", 1, Some(1), |m, a| {
        Ok(Val::Int(want_list(m, a, 0, "length")?.len() as i64))
    });
    def!("append", 0, None, |m, a| {
        let mut all: Vec<Val> = Vec::new();
        for i in 0..a.saturating_sub(1) {
            all.extend(want_list(m, a, i, "append")?);
        }
        // Last argument may be improper; append shares it.
        let tail = if a > 0 { m.arg(a, a - 1) } else { Val::Nil };
        for &it in &all {
            m.push(it);
        }
        m.push(tail);
        let tail = m.pop();
        let mut acc = tail;
        for _ in 0..all.len() {
            let car = m.pop();
            acc = m.cons(car, acc);
        }
        Ok(acc)
    });
    def!("reverse", 1, Some(1), |m, a| {
        let items = want_list(m, a, 0, "reverse")?;
        for &it in items.iter().rev() {
            m.push(it);
        }
        Ok(m.list_from_stack(items.len()))
    });
    def!("list-ref", 2, Some(2), |m, a| {
        let items = want_list(m, a, 0, "list-ref")?;
        let i = want_int(m, a, 1, "list-ref")? as usize;
        items
            .get(i)
            .copied()
            .ok_or_else(|| rerr("list-ref: index out of range"))
    });
    def!("list-tail", 2, Some(2), |m, a| {
        let mut cur = m.arg(a, 0);
        let k = want_int(m, a, 1, "list-tail")?;
        for _ in 0..k {
            match cur {
                Val::Obj(gc) if m.heap.kind(gc) == ObjKind::Pair => cur = m.heap.cdr(gc),
                _ => return Err(rerr("list-tail: list too short")),
            }
        }
        Ok(cur)
    });
    def!("memq", 2, Some(2), |m, a| mem_like(m, a, false));
    def!("memv", 2, Some(2), |m, a| mem_like(m, a, false));
    def!("member", 2, Some(2), |m, a| mem_like(m, a, true));
    def!("assq", 2, Some(2), |m, a| assoc_like(m, a, false));
    def!("assv", 2, Some(2), |m, a| assoc_like(m, a, false));
    def!("assoc", 2, Some(2), |m, a| assoc_like(m, a, true));
    def!("map", 2, None, prim_map);
    def!("for-each", 2, Some(2), prim_for_each);
    def!("apply", 2, None, prim_apply);
    def!("filter", 2, Some(2), |m, a| {
        let items = want_list(m, a, 1, "filter")?;
        let n = items.len();
        let fpos = m.stack.len() - a;
        let base = m.stack.len();
        for &it in &items {
            m.push(it); // root the elements; GC updates these slots
        }
        let mut kept = 0;
        for k in 0..n {
            let f = m.stack[fpos];
            let x = m.stack[base + k];
            let keep = m.apply(f, &[x])?;
            if keep.is_truthy() {
                let x = m.stack[base + k];
                m.push(x);
                kept += 1;
            }
        }
        let result = m.list_from_stack(kept);
        m.popn(n);
        Ok(result)
    });

    // Vectors.
    def!("make-vector", 1, Some(2), |m, a| {
        let n = want_int(m, a, 0, "make-vector")? as usize;
        let fill = if a > 1 { m.arg(a, 1) } else { Val::Int(0) };
        Ok(m.make_vector_fill(n, fill))
    });
    def!("vector", 0, None, |m, a| {
        let items: Vec<Val> = (0..a).map(|i| m.arg(a, i)).collect();
        Ok(m.vector(&items))
    });
    def!("vector-length", 1, Some(1), |m, a| match m.arg(a, 0) {
        Val::Obj(gc) if m.heap.kind(gc) == ObjKind::Vector => Ok(Val::Int(m.heap.len(gc) as i64)),
        _ => Err(rerr("vector-length: expected vector")),
    });
    def!("vector-ref", 2, Some(2), |m, a| match m.arg(a, 0) {
        Val::Obj(gc) if m.heap.kind(gc) == ObjKind::Vector => {
            let i = want_int(m, a, 1, "vector-ref")? as usize;
            if i >= m.heap.len(gc) {
                return Err(rerr("vector-ref: index out of range"));
            }
            Ok(m.heap.field(gc, i))
        }
        _ => Err(rerr("vector-ref: expected vector")),
    });
    def!("vector-set!", 3, Some(3), |m, a| match m.arg(a, 0) {
        Val::Obj(gc) if m.heap.kind(gc) == ObjKind::Vector => {
            let i = want_int(m, a, 1, "vector-set!")? as usize;
            if i >= m.heap.len(gc) {
                return Err(rerr("vector-set!: index out of range"));
            }
            m.set_field_rooted(gc, i, m.arg(a, 2));
            Ok(Val::Unit)
        }
        _ => Err(rerr("vector-set!: expected vector")),
    });
    def!("vector->list", 1, Some(1), |m, a| {
        // Use an absolute stack position: pushes below shift arg offsets.
        let pos = m.stack.len() - a;
        match m.stack[pos] {
            Val::Obj(gc) if m.heap.kind(gc) == ObjKind::Vector => {
                let n = m.heap.len(gc);
                for i in 0..n {
                    let x = match m.stack[pos] {
                        Val::Obj(g) => m.heap.field(g, i),
                        _ => unreachable!("rooted slot stays a vector"),
                    };
                    m.push(x);
                }
                Ok(m.list_from_stack(n))
            }
            _ => Err(rerr("vector->list: expected vector")),
        }
    });
    def!("list->vector", 1, Some(1), |m, a| {
        let items = want_list(m, a, 0, "list->vector")?;
        Ok(m.vector(&items))
    });

    // Strings and chars.
    def!("string-length", 1, Some(1), |m, a| {
        Ok(Val::Int(
            want_string(m, a, 0, "string-length")?.chars().count() as i64,
        ))
    });
    def!("string-append", 0, None, |m, a| {
        let mut s = String::new();
        for i in 0..a {
            s.push_str(&want_string(m, a, i, "string-append")?);
        }
        Ok(m.string(&s))
    });
    def!("substring", 3, Some(3), |m, a| {
        let s = want_string(m, a, 0, "substring")?;
        let start = want_int(m, a, 1, "substring")? as usize;
        let end = want_int(m, a, 2, "substring")? as usize;
        let chars: Vec<char> = s.chars().collect();
        if start > end || end > chars.len() {
            return Err(rerr("substring: bad range"));
        }
        let out: String = chars[start..end].iter().collect();
        Ok(m.string(&out))
    });
    def!("string=?", 2, Some(2), |m, a| Ok(Val::Bool(
        want_string(m, a, 0, "string=?")? == want_string(m, a, 1, "string=?")?
    )));
    def!("string<?", 2, Some(2), |m, a| Ok(Val::Bool(
        want_string(m, a, 0, "string<?")? < want_string(m, a, 1, "string<?")?
    )));
    def!("string-ref", 2, Some(2), |m, a| {
        let s = want_string(m, a, 0, "string-ref")?;
        let i = want_int(m, a, 1, "string-ref")? as usize;
        s.chars()
            .nth(i)
            .map(Val::Char)
            .ok_or_else(|| rerr("string-ref: out of range"))
    });
    def!("string->symbol", 1, Some(1), |m, a| {
        let s = want_string(m, a, 0, "string->symbol")?;
        Ok(Val::Sym(Symbol::intern(&s).index()))
    });
    def!("symbol->string", 1, Some(1), |m, a| {
        let s = want_sym(m, a, 0, "symbol->string")?;
        Ok(m.string(&s.as_str()))
    });
    def!("char->integer", 1, Some(1), |m, a| match m.arg(a, 0) {
        Val::Char(c) => Ok(Val::Int(c as i64)),
        _ => Err(rerr("char->integer: expected char")),
    });
    def!("integer->char", 1, Some(1), |m, a| {
        let i = want_int(m, a, 0, "integer->char")?;
        u32::try_from(i)
            .ok()
            .and_then(char::from_u32)
            .map(Val::Char)
            .ok_or_else(|| rerr("integer->char: bad code point"))
    });

    // IO and misc.
    def!("display", 0, None, prim_display);
    def!("write", 1, Some(1), |m, a| {
        print!("{}", print::write_val(m, m.arg(a, 0)));
        Ok(Val::Unit)
    });
    def!("newline", 0, Some(0), |_m, _a| {
        println!();
        Ok(Val::Unit)
    });
    def!("error", 1, None, prim_error);
    def!("raise", 1, Some(1), prim_raise);
    def!("%try", 2, Some(2), prim_try);
    def!("gensym", 0, Some(0), prim_gensym);
    def!("runtime-ms", 0, Some(0), prim_runtime_ms);
    def!("void", 0, None, |_m, _a| Ok(Val::Unit));

    // Concurrency (defined in concurrency.rs).
    concurrency::add_defs(&mut v);
    v
}

fn cxr(m: &mut Machine, argc: usize, path: &[usize]) -> Result<Val, SchemeError> {
    let mut v = m.arg(argc, 0);
    for &p in path {
        match v {
            Val::Obj(gc) if m.heap.kind(gc) == ObjKind::Pair => {
                v = m.heap.field(gc, p);
            }
            _ => return Err(rerr("c..r: expected pair")),
        }
    }
    Ok(v)
}

fn mem_like(m: &mut Machine, argc: usize, structural: bool) -> Result<Val, SchemeError> {
    let x = m.arg(argc, 0);
    let mut cur = m.arg(argc, 1);
    loop {
        match cur {
            Val::Nil => return Ok(Val::Bool(false)),
            Val::Obj(gc) if m.heap.kind(gc) == ObjKind::Pair => {
                let c = m.heap.car(gc);
                let hit = if structural {
                    equal(m, x, c)
                } else {
                    eqv(m, x, c)
                };
                if hit {
                    return Ok(cur);
                }
                cur = m.heap.cdr(gc);
            }
            _ => return Err(rerr("member: expected a proper list")),
        }
    }
}

fn assoc_like(m: &mut Machine, argc: usize, structural: bool) -> Result<Val, SchemeError> {
    let x = m.arg(argc, 0);
    let mut cur = m.arg(argc, 1);
    loop {
        match cur {
            Val::Nil => return Ok(Val::Bool(false)),
            Val::Obj(gc) if m.heap.kind(gc) == ObjKind::Pair => {
                let entry = m.heap.car(gc);
                if let Val::Obj(e) = entry {
                    if m.heap.kind(e) == ObjKind::Pair {
                        let k = m.heap.car(e);
                        let hit = if structural {
                            equal(m, x, k)
                        } else {
                            eqv(m, x, k)
                        };
                        if hit {
                            return Ok(entry);
                        }
                    }
                }
                cur = m.heap.cdr(gc);
            }
            _ => return Err(rerr("assoc: expected an association list")),
        }
    }
}

/// The signature of an extension primitive: `argc` arguments sit on the
/// top of the machine's operand stack (read them with [`Machine::arg`]).
pub type ExtPrimFn = fn(&mut Machine, usize) -> Result<Val, SchemeError>;

/// An extension primitive registered by a crate layered above
/// `sting-scheme` (e.g. the static analyzer, which depends on this crate
/// and therefore cannot be a built-in).
struct ExtDef {
    name: &'static str,
    min: usize,
    max: Option<usize>,
    f: ExtPrimFn,
}

static EXTENSIONS: parking_lot::Mutex<Vec<ExtDef>> = parking_lot::Mutex::new(Vec::new());

/// Registers an extension primitive process-wide.  Re-registering a name
/// replaces the previous definition.  Register before creating an
/// [`Interp`](crate::Interp) — interpreters created earlier keep their
/// existing global bindings.
pub fn register_extension(name: &'static str, min: usize, max: Option<usize>, f: ExtPrimFn) {
    let mut exts = EXTENSIONS.lock();
    match exts.iter_mut().find(|d| d.name == name) {
        Some(d) => {
            d.min = min;
            d.max = max;
            d.f = f;
        }
        None => exts.push(ExtDef { name, min, max, f }),
    }
}

/// The names of every registered primitive (built-ins, the concurrency
/// table and extensions).  The static analyzer uses this to resolve
/// global references in programs compiled without a live interpreter.
pub fn names() -> Vec<&'static str> {
    let mut v: Vec<&'static str> = defs().iter().map(|d| d.name).collect();
    v.extend(EXTENSIONS.lock().iter().map(|d| d.name));
    v
}

/// Installs every primitive into `globals`.  Extension primitives get ids
/// above the built-in table; their table position is their registration
/// order, which never shrinks, so ids stay valid.
pub fn install(globals: &crate::global::Globals) {
    let base = defs();
    for (i, d) in base.iter().enumerate() {
        globals.set(
            Symbol::intern(d.name),
            Value::native("prim", Arc::new(Prim { id: i as u16 })),
        );
    }
    for (i, d) in EXTENSIONS.lock().iter().enumerate() {
        globals.set(
            Symbol::intern(d.name),
            Value::native(
                "prim",
                Arc::new(Prim {
                    id: (base.len() + i) as u16,
                }),
            ),
        );
    }
}

fn check_arity(name: &str, min: usize, max: Option<usize>, argc: usize) -> Result<(), SchemeError> {
    if argc < min || max.is_some_and(|mx| argc > mx) {
        return Err(rerr(format!(
            "{name}: expected {min}{} arguments, got {argc}",
            match max {
                Some(mx) if mx == min => String::new(),
                Some(mx) => format!("..{mx}"),
                None => "+".to_string(),
            }
        )));
    }
    Ok(())
}

/// Dispatches a primitive call; arguments are the top `argc` stack values
/// (left in place — the dispatcher pops them after this returns).
pub(crate) fn dispatch(m: &mut Machine, p: &Prim, argc: usize) -> Result<Val, SchemeError> {
    thread_local! {
        static TABLE: Vec<Def> = defs();
    }
    TABLE.with(|t| {
        match t.get(p.id as usize) {
            Some(d) => {
                check_arity(d.name, d.min, d.max, argc)?;
                (d.f)(m, argc)
            }
            None => {
                // Extension ids live past the built-in table.  Copy the
                // definition out so the registry lock is not held while
                // the primitive runs (it may recursively dispatch).
                let ext = {
                    let exts = EXTENSIONS.lock();
                    exts.get(p.id as usize - t.len())
                        .map(|d| (d.name, d.min, d.max, d.f))
                };
                let Some((name, min, max, f)) = ext else {
                    return Err(rerr(format!("unknown primitive id {}", p.id)));
                };
                check_arity(name, min, max, argc)?;
                f(m, argc)
            }
        }
    })
}
