//! The bytecode machine: one per STING thread.
//!
//! A [`Machine`] owns a per-thread [`Heap`] (the paper's storage model —
//! independent collection, no global synchronization), a value stack and a
//! frame stack.  It polls the thread controller every
//! [`CHECKPOINT_WINDOW`] instructions, which is how Scheme threads are
//! preempted: the whole machine lives on the green thread's stack, so a
//! context switch (or a block inside a primitive) needs no special
//! machinery.
//!
//! Environments are heap vectors `[parent, v0, v1, …]`; closures are heap
//! objects `[code-id, env]`.  Calls allocate one frame vector — cheap, and
//! it exercises the generational collector exactly the way fine-grained
//! Scheme programs did in the paper.

use crate::bytecode::{Op, Program};
use crate::convert::{self, SharedFrame};
use crate::error::SchemeError;
use crate::global::Globals;
use crate::prims;
use crate::sexp::Span;
use std::collections::HashMap;
use std::sync::Arc;
use sting_areas::{Gc, Heap, HeapConfig, ObjKind, RootSet, Val, Word};
use sting_core::tc::{self, Cx};
use sting_value::Value;

/// Instructions executed between thread-controller polls.
pub const CHECKPOINT_WINDOW: u32 = 256;

/// Diagnostic suffix citing a source position, or empty when unknown.
fn at_span(span: Span) -> String {
    if span.is_none() {
        String::new()
    } else {
        format!(" (at {span})")
    }
}

enum EnvRef {
    Heap(Gc),
    Shared(Arc<SharedFrame>),
}

/// A call frame.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Frame {
    pub(crate) code: u32,
    pub(crate) ip: usize,
    /// The environment: `Val::Obj` of a frame vector, or `Val::Nil` at top
    /// level.
    pub(crate) env: Val,
}

/// The per-thread Scheme machine.
pub struct Machine {
    /// The thread's private heap.
    pub heap: Heap,
    pub(crate) stack: Vec<Val>,
    pub(crate) frames: Vec<Frame>,
    /// The compiled-program snapshot this machine executes.
    pub program: Arc<Program>,
    /// Shared global bindings (substrate values).
    pub globals: Arc<Globals>,
    /// Per-thread fluid (dynamic) bindings, inherited across forks.
    pub fluids: HashMap<u64, Value>,
    fuel: u32,
    /// Re-entrant `apply` depth (primitives calling closures); bounded so
    /// deeply nested `map`/`%try` chains cannot overflow the green stack.
    apply_depth: u32,
}

impl std::fmt::Debug for Machine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Machine")
            .field("stack", &self.stack.len())
            .field("frames", &self.frames.len())
            .finish()
    }
}

struct MachineRoots<'a> {
    stack: &'a mut Vec<Val>,
    frames: &'a mut Vec<Frame>,
    extra: &'a mut [Val],
}

fn trace_val(v: &mut Val, visit: &mut dyn FnMut(&mut Word)) {
    if let Val::Obj(gc) = v {
        let mut w = gc.word();
        visit(&mut w);
        *v = Val::Obj(Gc::from_word(w).expect("tracer preserves reference-ness"));
    }
}

impl RootSet for MachineRoots<'_> {
    fn trace(&mut self, visit: &mut dyn FnMut(&mut Word)) {
        for v in self.stack.iter_mut() {
            trace_val(v, visit);
        }
        for f in self.frames.iter_mut() {
            trace_val(&mut f.env, visit);
        }
        for v in self.extra.iter_mut() {
            trace_val(v, visit);
        }
    }
}

/// Runs `f` with the machine's heap and a root set covering the machine.
/// Usage: `with_heap!(machine, heap, roots, { heap.cons(a, b, roots) })`.
macro_rules! with_heap {
    ($m:expr, $extra:expr, |$heap:ident, $roots:ident| $body:expr) => {{
        let m: &mut Machine = $m;
        let out = {
            let mut roots_owner = MachineRoots {
                stack: &mut m.stack,
                frames: &mut m.frames,
                extra: $extra,
            };
            let $heap = &mut m.heap;
            let $roots = &mut roots_owner;
            $body
        };
        m.forward_gc_pauses();
        out
    }};
}

impl Machine {
    /// Creates a machine over a program snapshot and shared globals.
    pub fn new(program: Arc<Program>, globals: Arc<Globals>) -> Machine {
        Machine::with_heap_config(program, globals, HeapConfig::default())
    }

    /// Creates a machine with an explicit heap configuration (small
    /// nurseries exercise the collector; see the GC integration tests).
    pub fn with_heap_config(
        program: Arc<Program>,
        globals: Arc<Globals>,
        config: HeapConfig,
    ) -> Machine {
        Machine {
            heap: Heap::new(config),
            stack: Vec::with_capacity(256),
            frames: Vec::with_capacity(64),
            program,
            globals,
            fluids: HashMap::new(),
            fuel: CHECKPOINT_WINDOW,
            apply_depth: 0,
        }
    }

    /// Forwards GC pauses recorded by the heap to the owning VM's latency
    /// metrics ([`sting_core::metrics`]).  Cheap when no collection
    /// happened (one branch); machines running outside a STING thread keep
    /// the pauses in their [`Heap`] stats only.
    fn forward_gc_pauses(&mut self) {
        if !self.heap.has_pending_pauses() {
            return;
        }
        let pauses = self.heap.take_pending_pauses();
        if let Some(cx) = sting_core::Cx::current() {
            let vm = cx.vm();
            for ns in pauses {
                vm.metrics().record_gc_pause(ns);
            }
        }
    }

    /// Pushes a value onto the operand stack (extension primitives use
    /// this with [`Machine::list_from_stack`] to build list results).
    pub fn push(&mut self, v: Val) {
        self.stack.push(v);
    }

    pub(crate) fn pop(&mut self) -> Val {
        self.stack.pop().expect("value stack underflow")
    }

    pub(crate) fn popn(&mut self, n: usize) {
        let len = self.stack.len();
        self.stack.truncate(len - n);
    }

    /// Argument `i` of the current primitive call (0-based); the args are
    /// the top `argc` stack slots.
    pub fn arg(&self, argc: usize, i: usize) -> Val {
        self.stack[self.stack.len() - argc + i]
    }

    /// Allocates a cons cell with machine roots.
    pub(crate) fn cons(&mut self, car: Val, cdr: Val) -> Val {
        let mut extra = [car, cdr];
        let gc = with_heap!(self, &mut extra, |heap, roots| {
            // car/cdr are traced through `extra`; re-read after any GC.
            heap.cons(roots.extra[0], roots.extra[1], roots)
        });
        Val::Obj(gc)
    }

    /// Pops the top `n` stack values and builds a proper list of them (the
    /// first-pushed value becomes the first element).  Items on the stack
    /// are GC roots, so this is safe under collection.
    pub fn list_from_stack(&mut self, n: usize) -> Val {
        let mut acc = Val::Nil;
        for _ in 0..n {
            let car = self.pop();
            acc = self.cons(car, acc);
        }
        acc
    }

    /// Allocates a string object.
    pub fn string(&mut self, s: &str) -> Val {
        let gc = with_heap!(self, &mut [], |heap, roots| heap.make_string(s, roots));
        Val::Obj(gc)
    }

    /// Allocates a vector from values (the heap roots `items` internally).
    pub(crate) fn vector(&mut self, items: &[Val]) -> Val {
        let mut items: Vec<Val> = items.to_vec();
        let gc = with_heap!(self, &mut [], |heap, roots| {
            heap.make_vector_from(&mut items, roots)
        });
        Val::Obj(gc)
    }

    /// Allocates a closure over `code` capturing `env`.
    pub(crate) fn closure(&mut self, code: u32, env: Val) -> Val {
        let mut captures = [env];
        let gc = with_heap!(self, &mut [], |heap, roots| {
            heap.make_closure(code, &mut captures, roots)
        });
        Val::Obj(gc)
    }

    /// Writes field `i` of heap object `gc` (with machine roots).
    pub(crate) fn set_field_rooted(&mut self, gc: sting_areas::Gc, i: usize, v: Val) {
        with_heap!(self, &mut [], |heap, roots| heap.set_field(gc, i, v, roots));
    }

    /// Allocates a vector of `n` copies of `fill`.
    pub(crate) fn make_vector_fill(&mut self, n: usize, fill: Val) -> Val {
        let gc = with_heap!(self, &mut [], |heap, roots| heap
            .make_vector(n, fill, roots));
        Val::Obj(gc)
    }

    /// Interns a substrate value into the native table.
    pub(crate) fn native(&mut self, v: Value) -> Val {
        self.heap.intern_native(v)
    }

    /// Converts a heap value to a substrate value (for crossing threads).
    ///
    /// # Errors
    ///
    /// [`SchemeError::Raised`] on cyclic data.
    pub fn to_value(&mut self, v: Val) -> Result<Value, SchemeError> {
        convert::heap_to_value(self, v)
    }

    /// Converts a substrate value into this machine's heap.
    pub fn from_value(&mut self, v: &Value) -> Val {
        convert::value_to_heap(self, v)
    }

    /// Applies a closure (or primitive) to arguments, running the machine
    /// until it returns.  Re-entrant: primitives use this for `map`,
    /// `apply`, `%try` and tuple-space spawns.
    ///
    /// # Errors
    ///
    /// Propagates raised exceptions and runtime errors.
    pub fn apply(&mut self, f: Val, args: &[Val]) -> Result<Val, SchemeError> {
        if self.apply_depth >= 200 {
            return Err(SchemeError::runtime(
                "too much recursion through primitives (map/apply/try nesting)",
            ));
        }
        self.apply_depth += 1;
        let r = self.apply_inner(f, args);
        self.apply_depth -= 1;
        r
    }

    fn apply_inner(&mut self, f: Val, args: &[Val]) -> Result<Val, SchemeError> {
        let stack_base = self.stack.len();
        let frame_base = self.frames.len();
        let result = (|| {
            self.push(f);
            for &a in args {
                self.push(a);
            }
            let argc = args.len();
            if self.begin_call(argc, false, Span::NONE)? {
                let floor = self.frames.len();
                self.execute(floor)
            } else {
                // Primitive: result already pushed.
                Ok(self.pop())
            }
        })();
        if result.is_err() {
            // Unwind anything the failed call left behind so the caller's
            // stack discipline (and GC rooting) stays intact.
            self.frames.truncate(frame_base);
            self.stack.truncate(stack_base);
        }
        result
    }

    /// Runs top-level code object `code` to completion.
    ///
    /// # Errors
    ///
    /// Propagates raised exceptions and runtime errors.
    pub fn run_toplevel(&mut self, code: u32) -> Result<Val, SchemeError> {
        self.frames.push(Frame {
            code,
            ip: 0,
            env: Val::Nil,
        });
        let floor = self.frames.len();
        let result = self.execute(floor);
        if result.is_err() {
            self.frames.truncate(floor - 1);
            self.stack.clear();
        }
        result
    }

    /// Starts a call: stack holds `… f a1 … an`.  Returns `true` if a
    /// frame was pushed (closure call); `false` if a primitive ran and its
    /// result is on the stack.  `call_span` is the call site's source
    /// position, for diagnostics.
    fn begin_call(
        &mut self,
        argc: usize,
        tail: bool,
        call_span: Span,
    ) -> Result<bool, SchemeError> {
        let f = self.stack[self.stack.len() - argc - 1];
        match f {
            Val::Obj(gc) if self.heap.kind(gc) == ObjKind::Closure => {
                let code_id = self.heap.closure_code(gc);
                let captured_env = self.heap.closure_capture(gc, 0);
                let code = &self.program.codes[code_id as usize];
                let arity = code.arity as usize;
                let rest = code.rest;
                let name = code.name;
                if argc < arity || (!rest && argc > arity) {
                    return Err(SchemeError::runtime(format!(
                        "arity mismatch calling {}: expected {}{}, got {argc}{}",
                        name.map(|s| s.to_string())
                            .unwrap_or_else(|| "#<lambda>".into()),
                        arity,
                        if rest { "+" } else { "" },
                        at_span(call_span),
                    )));
                }
                // Collect rest args into a list.
                let restlist = if rest {
                    Some(self.list_from_stack(argc - arity))
                } else {
                    None
                };
                // Build the frame vector: [parent, a0 …, rest?].
                let mut slots: Vec<Val> = Vec::with_capacity(arity + 2);
                slots.push(captured_env);
                let top = self.stack.len();
                for i in 0..arity {
                    slots.push(self.stack[top - arity + i]);
                }
                if let Some(r) = restlist {
                    slots.push(r);
                }
                let frame_gc = {
                    let mut slots = slots;
                    with_heap!(self, &mut [], |heap, roots| {
                        heap.make_frame_from(&mut slots, roots)
                    })
                };
                // Pop args + fn.
                self.popn(arity + 1);
                if tail {
                    let frame = self.frames.last_mut().expect("tail call inside a frame");
                    frame.code = code_id;
                    frame.ip = 0;
                    frame.env = Val::Obj(frame_gc);
                } else {
                    self.frames.push(Frame {
                        code: code_id,
                        ip: 0,
                        env: Val::Obj(frame_gc),
                    });
                }
                Ok(true)
            }
            Val::Native(slot) => {
                let nv = self.heap.native(slot).clone();
                let Some(p) = nv.native_as::<prims::Prim>() else {
                    return Err(SchemeError::runtime(format!(
                        "not a procedure: {nv}{}",
                        at_span(call_span)
                    )));
                };
                let result = prims::dispatch(self, &p, argc)?;
                // Pop args + fn, push result.
                self.popn(argc + 1);
                self.push(result);
                Ok(false)
            }
            other => Err(SchemeError::runtime(format!(
                "not a procedure: {}{}",
                crate::print::display_val(self, other),
                at_span(call_span)
            ))),
        }
    }

    /// Core dispatch loop: runs until the frame stack drops below `floor`.
    fn execute(&mut self, floor: usize) -> Result<Val, SchemeError> {
        loop {
            self.fuel -= 1;
            if self.fuel == 0 {
                self.fuel = CHECKPOINT_WINDOW;
                tc::checkpoint();
            }
            let frame = *self.frames.last().expect("frame stack underflow");
            let op = self.program.codes[frame.code as usize].ops[frame.ip];
            self.frames.last_mut().expect("frame").ip += 1;
            match op {
                Op::Const(k) => {
                    let v = self.program.constants[k as usize].clone();
                    let hv = self.from_value(&v);
                    self.push(hv);
                }
                Op::Int(i) => self.push(Val::Int(i64::from(i))),
                Op::True => self.push(Val::Bool(true)),
                Op::False => self.push(Val::Bool(false)),
                Op::Nil => self.push(Val::Nil),
                Op::Unit => self.push(Val::Unit),
                Op::Local(depth, idx) => {
                    let v = self.local_ref(frame.env, depth, idx)?;
                    self.push(v);
                }
                Op::SetLocal(depth, idx) => {
                    let v = self.pop();
                    self.local_set(frame.env, depth, idx, v)?;
                    self.push(Val::Unit);
                }
                Op::Global(slot) => {
                    let name = self.program.global_names[slot as usize];
                    let v = self.globals.get(name).ok_or_else(|| {
                        let span = self.program.codes[frame.code as usize].span_at(frame.ip);
                        SchemeError::runtime(format!("unbound variable: {name}{}", at_span(span)))
                    })?;
                    let hv = self.from_value(&v);
                    self.push(hv);
                }
                Op::SetGlobal(slot) => {
                    let name = self.program.global_names[slot as usize];
                    let v = self.pop();
                    let sv = self.to_value(v)?;
                    self.globals.set(name, sv);
                    self.push(Val::Unit);
                }
                Op::Closure(code_id) => {
                    let v = self.closure(code_id, frame.env);
                    self.push(v);
                }
                Op::Call(n) => {
                    let span = self.program.codes[frame.code as usize].span_at(frame.ip);
                    self.begin_call(n as usize, false, span)?;
                }
                Op::TailCall(n) => {
                    let span = self.program.codes[frame.code as usize].span_at(frame.ip);
                    let pushed = self.begin_call(n as usize, true, span)?;
                    if !pushed {
                        // Primitive in tail position: its result is the
                        // frame's return value.
                        let v = self.pop();
                        self.frames.pop();
                        if self.frames.len() < floor {
                            return Ok(v);
                        }
                        self.push(v);
                    }
                }
                Op::Return => {
                    let v = self.pop();
                    self.frames.pop();
                    if self.frames.len() < floor {
                        return Ok(v);
                    }
                    self.push(v);
                }
                Op::Jump(d) => {
                    let f = self.frames.last_mut().expect("frame");
                    f.ip = (f.ip as i64 + i64::from(d)) as usize;
                }
                Op::JumpIfFalse(d) => {
                    let v = self.pop();
                    if v.is_false() {
                        let f = self.frames.last_mut().expect("frame");
                        f.ip = (f.ip as i64 + i64::from(d)) as usize;
                    }
                }
                Op::Pop => {
                    self.pop();
                }
            }
        }
    }

    /// Resolves the frame `depth` levels up the environment chain.  A
    /// frame is either a heap object ([`sting_areas::ObjKind::Frame`]) or a
    /// shared substrate frame ([`SharedFrame`]) for closures converted
    /// across thread/top-level boundaries.
    fn env_at(&self, env: Val, depth: u16) -> Result<EnvRef, SchemeError> {
        let short = || SchemeError::Vm("environment chain too short".into());
        let mut cur = match env {
            Val::Obj(gc) => EnvRef::Heap(gc),
            Val::Native(slot) => EnvRef::Shared(
                self.heap
                    .native(slot)
                    .native_as::<SharedFrame>()
                    .ok_or_else(short)?,
            ),
            _ => return Err(short()),
        };
        for _ in 0..depth {
            cur = match cur {
                EnvRef::Heap(gc) => match self.heap.field(gc, 0) {
                    Val::Obj(g) => EnvRef::Heap(g),
                    Val::Native(slot) => EnvRef::Shared(
                        self.heap
                            .native(slot)
                            .native_as::<SharedFrame>()
                            .ok_or_else(short)?,
                    ),
                    _ => return Err(short()),
                },
                EnvRef::Shared(sf) => {
                    let parent = sf.parent.clone();
                    EnvRef::Shared(parent.native_as::<SharedFrame>().ok_or_else(short)?)
                }
            };
        }
        Ok(cur)
    }

    fn local_ref(&mut self, env: Val, depth: u16, idx: u16) -> Result<Val, SchemeError> {
        match self.env_at(env, depth)? {
            EnvRef::Heap(frame) => Ok(self.heap.field(frame, idx as usize + 1)),
            EnvRef::Shared(sf) => {
                let v = sf
                    .slots
                    .read()
                    .get(idx as usize)
                    .cloned()
                    .ok_or_else(|| SchemeError::Vm("frame slot out of range".into()))?;
                Ok(self.from_value(&v))
            }
        }
    }

    fn local_set(&mut self, env: Val, depth: u16, idx: u16, v: Val) -> Result<(), SchemeError> {
        match self.env_at(env, depth)? {
            EnvRef::Heap(frame) => {
                let mut extra = [v, Val::Obj(frame)];
                with_heap!(self, &mut extra, |heap, roots| {
                    let value = roots.extra[0];
                    let Val::Obj(frame) = roots.extra[1] else {
                        unreachable!()
                    };
                    heap.set_field(frame, idx as usize + 1, value, roots);
                });
                Ok(())
            }
            EnvRef::Shared(sf) => {
                let sv = self.to_value(v)?;
                let mut slots = sf.slots.write();
                let slot = slots
                    .get_mut(idx as usize)
                    .ok_or_else(|| SchemeError::Vm("frame slot out of range".into()))?;
                *slot = sv;
                Ok(())
            }
        }
    }

    /// Runs a thread body: applies `thunk_value` (a converted closure) and
    /// converts the result back to a substrate value.  This is what
    /// `fork-thread` schedules.
    ///
    /// # Errors
    ///
    /// Propagates raised exceptions.
    pub fn run_thunk_value(&mut self, thunk: &Value) -> Result<Value, SchemeError> {
        let f = self.from_value(thunk);
        let result = self.apply(f, &[])?;
        self.to_value(result)
    }
}

/// Forks a Scheme thunk (already converted to a substrate value) as a new
/// STING thread with its own machine; used by `fork-thread` and friends.
pub fn fork_thunk_value(
    cx: &Cx,
    program: Arc<Program>,
    globals: Arc<Globals>,
    fluids: HashMap<u64, Value>,
    thunk: Value,
) -> std::sync::Arc<sting_core::Thread> {
    cx.fork_try(move |cx2| run_thunk_in_fresh_machine(cx2, program, globals, fluids, &thunk))
}

/// Creates a delayed Scheme thread from a converted thunk.
pub fn delay_thunk_value(
    cx: &Cx,
    program: Arc<Program>,
    globals: Arc<Globals>,
    fluids: HashMap<u64, Value>,
    thunk: Value,
) -> std::sync::Arc<sting_core::Thread> {
    cx.delayed_try(move |cx2| run_thunk_in_fresh_machine(cx2, program, globals, fluids, &thunk))
}

/// Body shared by forked/delayed Scheme threads; an uncaught raise
/// becomes the thread's exception outcome.
pub fn run_thunk_in_fresh_machine(
    _cx: &Cx,
    program: Arc<Program>,
    globals: Arc<Globals>,
    fluids: HashMap<u64, Value>,
    thunk: &Value,
) -> Result<Value, Value> {
    let mut m = Machine::new(program, globals);
    m.fluids = fluids;
    match m.run_thunk_value(thunk) {
        Ok(v) => Ok(v),
        Err(SchemeError::Raised(v)) => Err(v),
        Err(other) => Err(Value::from(other.to_string())),
    }
}
