//! The shared global environment.
//!
//! Global bindings hold substrate [`Value`]s, so every thread of a virtual
//! machine sees the same top level (the paper's shared root environment)
//! while thread heaps stay private: a global read converts the value into
//! the reading thread's heap, a write converts out.

use parking_lot::RwLock;
use std::collections::HashMap;
use sting_value::{Symbol, Value};

/// Shared, thread-safe global bindings.
#[derive(Debug, Default)]
pub struct Globals {
    map: RwLock<HashMap<Symbol, Value>>,
}

impl Globals {
    /// An empty global environment.
    pub fn new() -> Globals {
        Globals::default()
    }

    /// Reads a binding.
    pub fn get(&self, name: Symbol) -> Option<Value> {
        self.map.read().get(&name).cloned()
    }

    /// Writes a binding (creating it if needed).
    pub fn set(&self, name: Symbol, v: Value) {
        self.map.write().insert(name, v);
    }

    /// Whether `name` is bound.
    pub fn contains(&self, name: Symbol) -> bool {
        self.map.read().contains_key(&name)
    }

    /// Number of bindings.
    pub fn len(&self) -> usize {
        self.map.read().len()
    }

    /// Whether no bindings exist.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_set_round_trip() {
        let g = Globals::new();
        let x = Symbol::intern("x-global");
        assert!(g.get(x).is_none());
        g.set(x, Value::Int(5));
        assert_eq!(g.get(x), Some(Value::Int(5)));
        g.set(x, Value::Int(6));
        assert_eq!(g.get(x), Some(Value::Int(6)));
        assert!(g.contains(x));
    }
}
