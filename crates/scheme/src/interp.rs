//! The interpreter facade: source text in, values out, threads underneath.
//!
//! An [`Interp`] pairs a STING virtual machine with a growing compiled
//! [`Program`] and a shared global environment.  Each [`Interp::eval`]
//! reads, expands and compiles its input against a fresh immutable program
//! snapshot, then runs the resulting top-level code **on a STING thread**
//! of the machine (so top-level code can fork, block and be preempted like
//! any other thread).

use crate::bytecode::Program;
use crate::compile;
use crate::error::SchemeError;
use crate::expand;
use crate::global::Globals;
use crate::machine::Machine;
use crate::prims;
use crate::reader;
use parking_lot::Mutex;
use std::sync::Arc;
use sting_areas::HeapConfig;
use sting_core::vm::Vm;
use sting_value::Value;

/// A Scheme interpreter bound to a STING virtual machine.
pub struct Interp {
    vm: Arc<Vm>,
    program: Mutex<Arc<Program>>,
    globals: Arc<Globals>,
    heap_config: HeapConfig,
}

impl std::fmt::Debug for Interp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Interp")
            .field("globals", &self.globals.len())
            .finish()
    }
}

impl Interp {
    /// Creates an interpreter over `vm` with all primitives installed and
    /// the prelude (library procedures written in Scheme) loaded.
    pub fn new(vm: Arc<Vm>) -> Interp {
        let i = Interp::bare(vm);
        i.eval(crate::PRELUDE).expect("prelude evaluates");
        i
    }

    /// Creates an interpreter with primitives but without the prelude.
    pub fn bare(vm: Arc<Vm>) -> Interp {
        let globals = Arc::new(Globals::new());
        prims::install(&globals);
        Interp {
            vm,
            program: Mutex::new(Arc::new(Program::default())),
            globals,
            heap_config: HeapConfig::default(),
        }
    }

    /// Sets the heap configuration used by top-level evaluation machines
    /// (thread machines created by `fork-thread` use the default).
    pub fn set_heap_config(&mut self, config: HeapConfig) {
        self.heap_config = config;
    }

    /// The underlying virtual machine.
    pub fn vm(&self) -> &Arc<Vm> {
        &self.vm
    }

    /// The shared global environment.
    pub fn globals(&self) -> &Arc<Globals> {
        &self.globals
    }

    /// Evaluates every form in `src`, returning the value of the last one.
    ///
    /// # Errors
    ///
    /// Read/expand/compile errors, or the raised value if the program
    /// raises an uncaught exception.
    pub fn eval(&self, src: &str) -> Result<Value, SchemeError> {
        let forms = reader::read_all(src)?;
        if forms.is_empty() {
            return Ok(Value::Unit);
        }
        let mut last = Value::Unit;
        for form in &forms {
            last = self.eval_form(form)?;
        }
        Ok(last)
    }

    fn eval_form(&self, form: &crate::sexp::Sexp) -> Result<Value, SchemeError> {
        // Compile against a snapshot extension.
        let (snapshot, code) = {
            let mut guard = self.program.lock();
            let mut next: Program = (**guard).clone();
            let core = expand::expand_top(form)?;
            let code = compile::compile_top(&core, &mut next)?;
            let arc = Arc::new(next);
            *guard = arc.clone();
            (arc, code)
        };
        // Run on a STING thread so the top level is a real thread.
        let globals = self.globals.clone();
        let config = self.heap_config;
        let t = self.vm.fork_try(move |_cx| -> Result<Value, Value> {
            let mut m = Machine::with_heap_config(snapshot, globals, config);
            match m.run_toplevel(code).and_then(|v| m.to_value(v)) {
                Ok(sv) => Ok(sv),
                Err(SchemeError::Raised(e)) => Err(e),
                Err(other) => Err(Value::from(other.to_string())),
            }
        });
        match t.join_blocking() {
            Ok(v) => Ok(v),
            Err(e) => Err(SchemeError::Raised(e)),
        }
    }

    /// Evaluates and formats the result (REPL-style).
    ///
    /// # Errors
    ///
    /// As [`Interp::eval`].
    pub fn eval_to_string(&self, src: &str) -> Result<String, SchemeError> {
        Ok(self.eval(src)?.to_string())
    }
}
