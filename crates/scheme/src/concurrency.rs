//! Concurrency primitives: the substrate surfaced into Scheme.
//!
//! These are the operations of the paper's Section 3.1 (thread controller),
//! §4.2 (mutexes, tuple spaces) and §4.3 (speculative/barrier
//! synchronization), with threads, mutexes, streams and tuple spaces as
//! first-class Scheme values (native handles).

use crate::error::SchemeError;
use crate::machine::{self, Machine};
use crate::prims::{rerr, want_int, want_list, want_string, want_sym, Def};
use parking_lot::Mutex as PlMutex;
use std::sync::Arc;
use std::time::{Duration, Instant};
use sting_areas::Val;
use sting_core::fleet::Fleet;
use sting_core::net::{TcpListener, TcpStream, LOCALHOST};
use sting_core::tc::{self, Cx};
use sting_core::thread::{Thread, ThreadResult};
use sting_core::vm::Vm;
use sting_core::ThreadState;
use sting_sync::{Barrier, Channel, Mutex, Semaphore, Stream, StreamCursor};
use sting_tuple::{formal, lit, ShardedSpace, SpaceKind, Template, TemplateField, TupleSpace};
use sting_value::{Symbol, Value};

fn cx() -> Result<Cx, SchemeError> {
    Cx::current().ok_or_else(|| rerr("operation requires a STING thread"))
}

fn want_thread(m: &Machine, argc: usize, i: usize, who: &str) -> Result<Arc<Thread>, SchemeError> {
    match m.arg(argc, i) {
        Val::Native(slot) => m
            .heap
            .native(slot)
            .native_as::<Thread>()
            .ok_or_else(|| rerr(format!("{who}: expected thread"))),
        _ => Err(rerr(format!("{who}: expected thread"))),
    }
}

fn want_native<T: std::any::Any + Send + Sync>(
    m: &Machine,
    argc: usize,
    i: usize,
    who: &str,
) -> Result<Arc<T>, SchemeError> {
    match m.arg(argc, i) {
        Val::Native(slot) => m
            .heap
            .native(slot)
            .native_as::<T>()
            .ok_or_else(|| rerr(format!("{who}: wrong object type"))),
        _ => Err(rerr(format!("{who}: expected a runtime object"))),
    }
}

/// Converts the closure argument `i` into a portable thunk value.
fn want_thunk_value(
    m: &mut Machine,
    argc: usize,
    i: usize,
    who: &str,
) -> Result<Value, SchemeError> {
    let v = m.arg(argc, i);
    let sv = m.to_value(v)?;
    let ok = sv
        .as_native()
        .is_some_and(|h| h.tag() == crate::convert::CLOSURE_TAG || h.tag() == "prim");
    if ok {
        Ok(sv)
    } else {
        Err(rerr(format!("{who}: expected a procedure")))
    }
}

fn unwrap_result(m: &mut Machine, r: ThreadResult) -> Result<Val, SchemeError> {
    match r {
        Ok(v) => Ok(m.from_value(&v)),
        Err(e) => Err(SchemeError::Raised(e)),
    }
}

fn thread_val(m: &mut Machine, t: &Arc<Thread>) -> Val {
    m.native(t.to_value())
}

fn fork(m: &mut Machine, argc: usize, delayed: bool) -> Result<Val, SchemeError> {
    let who = if delayed {
        "create-thread"
    } else {
        "fork-thread"
    };
    let thunk = want_thunk_value(m, argc, 0, who)?;
    let cx = cx()?;
    let t = if delayed {
        machine::delay_thunk_value(
            &cx,
            m.program.clone(),
            m.globals.clone(),
            m.fluids.clone(),
            thunk,
        )
    } else if argc > 1 {
        // Explicit VP placement: (fork-thread thunk vp).
        let vp = want_int(m, argc, 1, who)? as usize;
        let program = m.program.clone();
        let globals = m.globals.clone();
        let fluids = m.fluids.clone();
        cx.fork_on_try(vp, move |cx2| {
            machine::run_thunk_in_fresh_machine(cx2, program, globals, fluids, &thunk)
        })
        .map_err(|e| rerr(format!("fork-thread: {e}")))?
    } else {
        machine::fork_thunk_value(
            &cx,
            m.program.clone(),
            m.globals.clone(),
            m.fluids.clone(),
            thunk,
        )
    };
    Ok(thread_val(m, &t))
}

/// Decodes a Scheme template list: the symbol `?` is a formal, anything
/// else is a literal.
fn want_template(
    m: &mut Machine,
    argc: usize,
    i: usize,
    who: &str,
) -> Result<Template, SchemeError> {
    let items = want_list(m, argc, i, who)?;
    let q = Symbol::intern("?");
    let mut fields: Vec<TemplateField> = Vec::with_capacity(items.len());
    for &item in &items {
        match item {
            Val::Sym(s) if Symbol::from_index(s) == q => fields.push(formal()),
            other => {
                let v = m.to_value(other)?;
                fields.push(lit(v));
            }
        }
    }
    Ok(Template::new(fields))
}

/// Decodes an optional trailing milliseconds argument into a [`Duration`].
fn want_ms(m: &Machine, argc: usize, i: usize, who: &str) -> Result<Duration, SchemeError> {
    let ms = want_int(m, argc, i, who)?;
    Ok(Duration::from_millis(ms.max(0) as u64))
}

fn bindings_to_val(m: &mut Machine, bindings: Vec<Value>) -> Val {
    for b in &bindings {
        let hv = m.from_value(b);
        m.push(hv);
    }
    m.list_from_stack(bindings.len())
}

/// The `(vm-metrics)` row list for one VM (see the prim's doc comment).
fn metrics_rows(m: &mut Machine, vm: &Arc<Vm>) -> Val {
    let snap = vm.metrics().snapshot();
    let rows = [
        ("dispatch", snap.dispatch),
        ("steal", snap.steal),
        ("block-wake", snap.wake),
        ("gc-pause", snap.gc_pause),
    ];
    for (name, h) in &rows {
        m.push(Val::Sym(Symbol::intern(name).index()));
        m.push(Val::Int(h.count as i64));
        m.push(Val::Int(h.min as i64));
        m.push(Val::Float(h.mean()));
        m.push(Val::Int(h.p50() as i64));
        m.push(Val::Int(h.p99() as i64));
        m.push(Val::Int(h.max as i64));
        let row = m.list_from_stack(7);
        m.push(row);
    }
    m.list_from_stack(rows.len())
}

/// A fluid (dynamic binding) key.
#[derive(Debug)]
pub struct Fluid {
    id: u64,
}

/// Cursor handle: a mutable position over a stream.
#[derive(Debug)]
pub struct CursorHandle(pub(crate) PlMutex<StreamCursor>);

pub(crate) fn add_defs(v: &mut Vec<Def>) {
    macro_rules! def {
        ($name:literal, $min:expr, $max:expr, $f:expr) => {
            v.push(Def {
                name: $name,
                min: $min,
                max: $max,
                f: $f,
            });
        };
    }

    // --- threads ------------------------------------------------------
    def!("fork-thread", 1, Some(2), |m, a| fork(m, a, false));
    def!("create-thread", 1, Some(1), |m, a| fork(m, a, true));
    def!("thread?", 1, Some(1), |m, a| {
        Ok(Val::Bool(want_thread(m, a, 0, "thread?").is_ok()))
    });
    def!("thread-run", 1, Some(2), |m, a| {
        let t = want_thread(m, a, 0, "thread-run")?;
        let vp = if a > 1 {
            want_int(m, a, 1, "thread-run")? as usize
        } else {
            tc::current_vp().map(|v| v.index()).unwrap_or(0)
        };
        tc::thread_run(&t, vp).map_err(|e| rerr(format!("thread-run: {e}")))?;
        Ok(Val::Unit)
    });
    def!("thread-wait", 1, Some(2), |m, a| {
        // (thread-wait t [ms]): #f if the thread did not determine in time.
        let t = want_thread(m, a, 0, "thread-wait")?;
        if a > 1 {
            let ms = want_ms(m, a, 1, "thread-wait")?;
            match tc::wait_timeout(&t, ms) {
                Some(r) => unwrap_result(m, r),
                None => Ok(Val::Bool(false)),
            }
        } else {
            let r = tc::wait(&t);
            unwrap_result(m, r)
        }
    });
    def!("thread-value", 1, Some(1), |m, a| {
        // touch: steals claimable threads onto this TCB.
        let t = want_thread(m, a, 0, "thread-value")?;
        let r = tc::touch(&t);
        unwrap_result(m, r)
    });
    def!("touch", 1, Some(1), |m, a| {
        let t = want_thread(m, a, 0, "touch")?;
        let r = tc::touch(&t);
        unwrap_result(m, r)
    });
    def!("thread-block", 1, Some(1), |m, a| {
        let t = want_thread(m, a, 0, "thread-block")?;
        tc::thread_block(&t).map_err(|e| rerr(format!("thread-block: {e}")))?;
        Ok(Val::Unit)
    });
    def!("thread-suspend", 1, Some(2), |m, a| {
        let t = want_thread(m, a, 0, "thread-suspend")?;
        let q = if a > 1 {
            Some(Duration::from_millis(
                want_int(m, a, 1, "thread-suspend")? as u64
            ))
        } else {
            None
        };
        tc::thread_suspend(&t, q).map_err(|e| rerr(format!("thread-suspend: {e}")))?;
        Ok(Val::Unit)
    });
    def!("thread-raise!", 2, Some(2), |m, a| {
        let t = want_thread(m, a, 0, "thread-raise!")?;
        let v = m.arg(a, 1);
        let sv = m.to_value(v)?;
        tc::thread_raise(&t, sv).map_err(|e| rerr(format!("thread-raise!: {e}")))?;
        Ok(Val::Unit)
    });
    def!("thread-terminate", 1, Some(2), |m, a| {
        let t = want_thread(m, a, 0, "thread-terminate")?;
        let val = if a > 1 {
            let v = m.arg(a, 1);
            m.to_value(v)?
        } else {
            Value::Unit
        };
        tc::thread_terminate(&t, val).map_err(|e| rerr(format!("thread-terminate: {e}")))?;
        Ok(Val::Unit)
    });
    def!("thread-state", 1, Some(1), |m, a| {
        let t = want_thread(m, a, 0, "thread-state")?;
        let s = match t.state() {
            ThreadState::Delayed => "delayed",
            ThreadState::Scheduled => "scheduled",
            ThreadState::Evaluating => "evaluating",
            ThreadState::Blocked => "blocked",
            ThreadState::Suspended => "suspended",
            ThreadState::Stolen => "stolen",
            ThreadState::Determined => "determined",
        };
        Ok(Val::Sym(Symbol::intern(s).index()))
    });
    def!("current-thread", 0, Some(0), |m, _a| {
        let t = tc::current_thread().ok_or_else(|| rerr("current-thread: not on a thread"))?;
        Ok(thread_val(m, &t))
    });
    def!("yield-processor", 0, Some(0), |_m, _a| {
        tc::yield_now().map_err(|e| rerr(format!("yield-processor: {e}")))?;
        Ok(Val::Unit)
    });
    def!("current-vp", 0, Some(0), |_m, _a| {
        Ok(Val::Int(
            tc::current_vp().map(|v| v.index() as i64).unwrap_or(-1),
        ))
    });
    def!("vp-count", 0, Some(0), |_m, _a| {
        let cx = cx()?;
        Ok(Val::Int(cx.vm().vp_count() as i64))
    });
    def!("current-shard", 0, Some(0), |_m, _a| {
        // The calling thread's VM shard index (0 on an unsharded VM).
        Ok(Val::Int(tc::current_shard().unwrap_or(0) as i64))
    });
    // Flight recorder (scheduler event tracing).  `trace-start` /
    // `trace-stop` toggle recording on the running VM; `trace-dump`
    // returns the human-readable event log as a string; `trace-export`
    // writes chrome://tracing JSON to the given path and returns the
    // number of events exported.
    def!("trace-start", 0, Some(0), |_m, _a| {
        cx()?.vm().tracer().set_enabled(true);
        Ok(Val::Unit)
    });
    def!("trace-stop", 0, Some(0), |_m, _a| {
        cx()?.vm().tracer().set_enabled(false);
        Ok(Val::Unit)
    });
    def!("trace-count", 0, Some(0), |_m, _a| {
        Ok(Val::Int(cx()?.vm().tracer().recorded() as i64))
    });
    def!("trace-dump", 0, Some(0), |m, _a| {
        let dump = cx()?.vm().trace_dump();
        Ok(m.string(&dump))
    });
    // `trace-audit` replays the recording through the scheduler invariant
    // linter (sting_core::audit) and returns the report rendered as a
    // string — "trace audit: 0 finding(s) ..." on a clean run.
    def!("trace-audit", 0, Some(0), |m, _a| {
        let report = cx()?.vm().trace_audit();
        Ok(m.string(&report.to_string()))
    });
    def!("trace-export", 1, Some(1), |m, a| {
        let path = want_string(m, a, 0, "trace-export")?;
        let vm = cx()?.vm();
        let events = vm.tracer().snapshot();
        let json = sting_core::trace::chrome_json(vm.name(), &events);
        std::fs::write(&path, json).map_err(|e| rerr(format!("trace-export: {path}: {e}")))?;
        Ok(Val::Int(events.len() as i64))
    });
    def!("sleep-ms", 1, Some(1), |m, a| {
        let ms = want_int(m, a, 0, "sleep-ms")?;
        cx()?.sleep(Duration::from_millis(ms.max(0) as u64));
        Ok(Val::Unit)
    });
    def!("set-priority!", 1, Some(1), |m, a| {
        let p = want_int(m, a, 0, "set-priority!")?;
        cx()?.set_priority(p as i32);
        Ok(Val::Unit)
    });
    def!("set-quantum!", 1, Some(1), |m, a| {
        let q = want_int(m, a, 0, "set-quantum!")?;
        cx()?.set_quantum(q.max(1) as u32);
        Ok(Val::Unit)
    });
    def!("set-stealable!", 2, Some(2), |m, a| {
        let t = want_thread(m, a, 0, "set-stealable!")?;
        t.set_stealable(m.arg(a, 1).is_truthy());
        Ok(Val::Unit)
    });
    def!("thread-priority-set!", 2, Some(2), |m, a| {
        let t = want_thread(m, a, 0, "thread-priority-set!")?;
        t.set_priority(want_int(m, a, 1, "thread-priority-set!")? as i32);
        Ok(Val::Unit)
    });
    def!("without-preemption", 1, Some(1), |m, a| {
        let thunk = m.arg(a, 0);
        let cx = cx()?;
        // The thunk runs on this same TCB with preemption disabled.
        cx.without_preemption(|| m.apply(thunk, &[]))
    });
    def!("kill-group", 1, Some(2), |m, a| {
        let t = want_thread(m, a, 0, "kill-group")?;
        let val = if a > 1 {
            let v = m.arg(a, 1);
            m.to_value(v)?
        } else {
            Value::sym("group-killed")
        };
        t.group().terminate_all(val);
        Ok(Val::Unit)
    });

    // --- speculative / barrier synchronization -------------------------
    def!("wait-for-one", 1, Some(1), |m, a| {
        let ts = thread_list(m, a, 0, "wait-for-one")?;
        let (idx, r) = sting_sync::wait_for_one(&ts);
        let v = unwrap_result(m, r)?;
        m.push(Val::Int(idx as i64));
        m.push(v);
        Ok(m.list_from_stack(2))
    });
    def!("wait-for-one!", 1, Some(1), |m, a| {
        // The paper's wait-for-one: terminate the losers.
        let ts = thread_list(m, a, 0, "wait-for-one!")?;
        let (idx, r) = sting_sync::race(&ts);
        let v = unwrap_result(m, r)?;
        m.push(Val::Int(idx as i64));
        m.push(v);
        Ok(m.list_from_stack(2))
    });
    def!("wait-for-all", 1, Some(1), |m, a| {
        let ts = thread_list(m, a, 0, "wait-for-all")?;
        let rs = sting_sync::wait_for_all(&ts);
        let mut n = 0;
        for r in rs {
            let v = unwrap_result(m, r)?;
            m.push(v);
            n += 1;
        }
        Ok(m.list_from_stack(n))
    });
    def!("block-on-group", 2, Some(2), |m, a| {
        let count = want_int(m, a, 0, "block-on-group")? as usize;
        let ts = thread_list(m, a, 1, "block-on-group")?;
        sting_sync::block_on_group(count, &ts);
        Ok(Val::Unit)
    });

    // --- mutexes --------------------------------------------------------
    def!("make-mutex", 0, Some(2), |m, a| {
        let active = if a > 0 {
            want_int(m, a, 0, "make-mutex")? as u32
        } else {
            64
        };
        let passive = if a > 1 {
            want_int(m, a, 1, "make-mutex")? as u32
        } else {
            4
        };
        Ok(m.native(Mutex::new(active, passive).to_value()))
    });
    def!("mutex-acquire", 1, Some(2), |m, a| {
        // (mutex-acquire m [ms]): with a timeout, #t on acquisition and
        // #f if the lock was not obtained in time.
        let mx = want_native::<Mutex>(m, a, 0, "mutex-acquire")?;
        if a > 1 {
            let ms = want_ms(m, a, 1, "mutex-acquire")?;
            match mx.acquire_timeout(ms) {
                Ok(guard) => {
                    std::mem::forget(guard);
                    Ok(Val::Bool(true))
                }
                Err(_) => Ok(Val::Bool(false)),
            }
        } else {
            mx.acquire_manual();
            Ok(Val::Unit)
        }
    });
    def!("mutex-release", 1, Some(1), |m, a| {
        let mx = want_native::<Mutex>(m, a, 0, "mutex-release")?;
        mx.release();
        Ok(Val::Unit)
    });
    def!("with-mutex", 2, Some(2), |m, a| {
        let mx = want_native::<Mutex>(m, a, 0, "with-mutex")?;
        let thunk = m.arg(a, 1);
        mx.acquire_manual();
        let r = m.apply(thunk, &[]);
        mx.release();
        r
    });

    // --- semaphores and barriers ----------------------------------------
    def!("make-semaphore", 1, Some(1), |m, a| {
        let n = want_int(m, a, 0, "make-semaphore")? as usize;
        Ok(m.native(Semaphore::new(n).to_value()))
    });
    def!("semaphore-acquire", 1, Some(2), |m, a| {
        // (semaphore-acquire s [ms]): with a timeout, #t on acquisition
        // and #f if no permit arrived in time.
        let sem = want_native::<Semaphore>(m, a, 0, "semaphore-acquire")?;
        if a > 1 {
            let ms = want_ms(m, a, 1, "semaphore-acquire")?;
            Ok(Val::Bool(sem.acquire_timeout(ms).is_ok()))
        } else {
            sem.acquire();
            Ok(Val::Unit)
        }
    });
    def!("semaphore-release", 1, Some(1), |m, a| {
        want_native::<Semaphore>(m, a, 0, "semaphore-release")?.release();
        Ok(Val::Unit)
    });
    def!("make-barrier", 1, Some(1), |m, a| {
        let n = want_int(m, a, 0, "make-barrier")? as usize;
        Ok(m.native(Barrier::new(n).to_value()))
    });
    def!("barrier-arrive", 1, Some(2), |m, a| {
        // (barrier-arrive b [ms]): leader flag, or the symbol `timeout`
        // if the cycle did not complete in time (the arrival is
        // withdrawn).
        let b = want_native::<Barrier>(m, a, 0, "barrier-arrive")?;
        if a > 1 {
            let ms = want_ms(m, a, 1, "barrier-arrive")?;
            match b.arrive_timeout(ms) {
                Ok(leader) => Ok(Val::Bool(leader)),
                Err(_) => Ok(Val::Sym(Symbol::intern("timeout").index())),
            }
        } else {
            Ok(Val::Bool(b.arrive()))
        }
    });

    // --- channels --------------------------------------------------------
    def!("make-channel", 0, Some(1), |m, a| {
        // (make-channel [capacity]): unbounded without a capacity.
        let ch = if a > 0 {
            Channel::bounded(want_int(m, a, 0, "make-channel")? as usize)
        } else {
            Channel::unbounded()
        };
        Ok(m.native(ch.to_value()))
    });
    def!("channel-send", 2, Some(2), |m, a| {
        let ch = want_native::<Channel>(m, a, 0, "channel-send")?;
        let v = m.arg(a, 1);
        let sv = m.to_value(v)?;
        ch.send(sv)
            .map_err(|e| rerr(format!("channel-send: {e}")))?;
        Ok(Val::Unit)
    });
    def!("channel-recv", 1, Some(2), |m, a| {
        // (channel-recv ch [ms]): blocks for the next value; eof-object
        // once the channel is closed and drained; with a timeout, the
        // symbol `timeout` if nothing arrived in time.
        let ch = want_native::<Channel>(m, a, 0, "channel-recv")?;
        if a > 1 {
            let ms = want_ms(m, a, 1, "channel-recv")?;
            match ch.recv_timeout(ms) {
                Ok(Some(v)) => Ok(m.from_value(&v)),
                Ok(None) => Ok(Val::Eof),
                Err(_) => Ok(Val::Sym(Symbol::intern("timeout").index())),
            }
        } else {
            match ch.recv() {
                Some(v) => Ok(m.from_value(&v)),
                None => Ok(Val::Eof),
            }
        }
    });
    def!("channel-try-recv", 1, Some(1), |m, a| {
        // Non-blocking: #f when nothing is immediately available.
        let ch = want_native::<Channel>(m, a, 0, "channel-try-recv")?;
        match ch.try_recv() {
            Some(v) => Ok(m.from_value(&v)),
            None => Ok(Val::Bool(false)),
        }
    });
    def!("channel-close", 1, Some(1), |m, a| {
        want_native::<Channel>(m, a, 0, "channel-close")?.close();
        Ok(Val::Unit)
    });

    // --- streams ---------------------------------------------------------
    def!("make-stream", 0, Some(0), |m, _a| {
        Ok(m.native(Stream::new().to_value()))
    });
    def!("stream-attach!", 2, Some(2), |m, a| {
        let s = want_native::<Stream>(m, a, 0, "stream-attach!")?;
        let v = m.arg(a, 1);
        let sv = m.to_value(v)?;
        s.attach(sv);
        Ok(Val::Unit)
    });
    def!("stream-close!", 1, Some(1), |m, a| {
        want_native::<Stream>(m, a, 0, "stream-close!")?.close();
        Ok(Val::Unit)
    });
    def!("stream-cursor", 1, Some(1), |m, a| {
        let s = want_native::<Stream>(m, a, 0, "stream-cursor")?;
        Ok(m.native(Value::native(
            "stream-cursor",
            Arc::new(CursorHandle(PlMutex::new(s.cursor()))),
        )))
    });
    def!("cursor-hd", 1, Some(1), |m, a| {
        let c = want_native::<CursorHandle>(m, a, 0, "cursor-hd")?;
        let cur = c.0.lock().clone();
        match cur.hd() {
            Some(v) => Ok(m.from_value(&v)),
            None => Ok(Val::Eof),
        }
    });
    def!("cursor-rest", 1, Some(1), |m, a| {
        let c = want_native::<CursorHandle>(m, a, 0, "cursor-rest")?;
        let next = c.0.lock().rest();
        Ok(m.native(Value::native(
            "stream-cursor",
            Arc::new(CursorHandle(PlMutex::new(next))),
        )))
    });
    def!("cursor-next!", 1, Some(2), |m, a| {
        // (cursor-next! c [ms]): with a timeout, the symbol `timeout` is
        // returned (and the cursor does not advance) if no element
        // appeared in time; eof still means the stream closed.
        let c = want_native::<CursorHandle>(m, a, 0, "cursor-next!")?;
        let deadline = if a > 1 {
            Some(want_ms(m, a, 1, "cursor-next!")?)
        } else {
            None
        };
        let v = {
            // Clone out so we never hold the lock across a block.
            let snapshot = c.0.lock().clone();
            let mut cur = snapshot;
            let v = match deadline {
                Some(ms) => match cur.next_timeout(ms) {
                    Ok(v) => v,
                    Err(_) => return Ok(Val::Sym(Symbol::intern("timeout").index())),
                },
                None => cur.next(),
            };
            *c.0.lock() = cur;
            v
        };
        match v {
            Some(v) => Ok(m.from_value(&v)),
            None => Ok(Val::Eof),
        }
    });
    def!("eof-object?", 1, Some(1), |m, a| {
        Ok(Val::Bool(matches!(m.arg(a, 0), Val::Eof)))
    });

    // --- tuple spaces ------------------------------------------------------
    def!("make-ts", 0, Some(1), |m, a| {
        let kind = if a > 0 {
            match want_sym(m, a, 0, "make-ts")?.as_str().as_ref() {
                "hashed" => SpaceKind::default(),
                "queue" => SpaceKind::Queue,
                "stack" => SpaceKind::Stack,
                "bag" => SpaceKind::Bag,
                "set" => SpaceKind::Set,
                "shared-var" => SpaceKind::SharedVar,
                "semaphore" => SpaceKind::Semaphore,
                "vector" => SpaceKind::Vector,
                other => return Err(rerr(format!("make-ts: unknown kind {other}"))),
            }
        } else {
            SpaceKind::default()
        };
        Ok(m.native(TupleSpace::with_kind(kind).to_value()))
    });
    def!("ts-put", 2, Some(2), |m, a| {
        let ts = want_native::<TupleSpace>(m, a, 0, "ts-put")?;
        let items = want_list(m, a, 1, "ts-put")?;
        let mut fields = Vec::with_capacity(items.len());
        for &it in &items {
            fields.push(m.to_value(it)?);
        }
        ts.put(fields);
        Ok(Val::Unit)
    });
    def!("ts-get", 2, Some(3), |m, a| {
        // (ts-get ts tmpl [ms]): #f if nothing matched within `ms`.
        let ts = want_native::<TupleSpace>(m, a, 0, "ts-get")?;
        let t = want_template(m, a, 1, "ts-get")?;
        if a > 2 {
            let ms = want_ms(m, a, 2, "ts-get")?;
            match ts.get_timeout(&t, ms) {
                Some(b) => Ok(bindings_to_val(m, b)),
                None => Ok(Val::Bool(false)),
            }
        } else {
            let b = ts.get(&t);
            Ok(bindings_to_val(m, b))
        }
    });
    def!("ts-rd", 2, Some(3), |m, a| {
        // (ts-rd ts tmpl [ms]): #f if nothing matched within `ms`.
        let ts = want_native::<TupleSpace>(m, a, 0, "ts-rd")?;
        let t = want_template(m, a, 1, "ts-rd")?;
        if a > 2 {
            let ms = want_ms(m, a, 2, "ts-rd")?;
            match ts.rd_timeout(&t, ms) {
                Some(b) => Ok(bindings_to_val(m, b)),
                None => Ok(Val::Bool(false)),
            }
        } else {
            let b = ts.rd(&t);
            Ok(bindings_to_val(m, b))
        }
    });
    def!("ts-try-get", 2, Some(2), |m, a| {
        let ts = want_native::<TupleSpace>(m, a, 0, "ts-try-get")?;
        let t = want_template(m, a, 1, "ts-try-get")?;
        match ts.try_get(&t) {
            Some(b) => Ok(bindings_to_val(m, b)),
            None => Ok(Val::Bool(false)),
        }
    });
    def!("ts-try-rd", 2, Some(2), |m, a| {
        let ts = want_native::<TupleSpace>(m, a, 0, "ts-try-rd")?;
        let t = want_template(m, a, 1, "ts-try-rd")?;
        match ts.try_rd(&t) {
            Some(b) => Ok(bindings_to_val(m, b)),
            None => Ok(Val::Bool(false)),
        }
    });
    def!("ts-spawn", 2, Some(2), |m, a| {
        // (ts-spawn ts (list thunk...)): active tuple of Scheme threads.
        let ts = want_native::<TupleSpace>(m, a, 0, "ts-spawn")?;
        let thunks = want_list(m, a, 1, "ts-spawn")?;
        let cx = cx()?;
        let mut fields = Vec::with_capacity(thunks.len());
        for (i, &th) in thunks.iter().enumerate() {
            let _ = i;
            let sv = m.to_value(th)?;
            let t = machine::fork_thunk_value(
                &cx,
                m.program.clone(),
                m.globals.clone(),
                m.fluids.clone(),
                sv,
            );
            fields.push(t.to_value());
        }
        ts.put(fields);
        Ok(Val::Unit)
    });

    // --- fleets (sharded virtual machines) --------------------------------
    // A fleet is a set of cooperating VM shards on one physical machine
    // (sting_core::fleet): work spreads between shards over per-pair
    // mailboxes, and a sharded tuple space partitions its tuples across
    // the shards by the same (arity, field₀) hash its buckets use.
    def!("fleet-spawn", 1, Some(2), |m, a| {
        // (fleet-spawn n [vps-per-shard]): a traced fleet of n VM shards.
        let n = want_int(m, a, 0, "fleet-spawn")?.max(1) as usize;
        let vps = if a > 1 {
            want_int(m, a, 1, "fleet-spawn")?.max(1) as usize
        } else {
            1
        };
        let fleet = Fleet::builder()
            .shards(n)
            .vps_per_shard(vps)
            .trace(true)
            .build();
        Ok(m.native(Value::native("fleet", Arc::new(fleet))))
    });
    def!("fleet-size", 1, Some(1), |m, a| {
        let fleet = want_native::<Fleet>(m, a, 0, "fleet-size")?;
        Ok(Val::Int(fleet.len() as i64))
    });
    def!("fleet-fork", 3, Some(3), |m, a| {
        // (fleet-fork fleet shard thunk): run thunk as a thread on `shard`.
        let fleet = want_native::<Fleet>(m, a, 0, "fleet-fork")?;
        let shard = want_int(m, a, 1, "fleet-fork")? as usize;
        let thunk = want_thunk_value(m, a, 2, "fleet-fork")?;
        if shard >= fleet.len() {
            return Err(rerr(format!(
                "fleet-fork: shard {shard} out of range 0..{}",
                fleet.len()
            )));
        }
        let program = m.program.clone();
        let globals = m.globals.clone();
        let fluids = m.fluids.clone();
        let t = fleet.shard(shard).fork_try(move |cx2| {
            machine::run_thunk_in_fresh_machine(cx2, program, globals, fluids, &thunk)
        });
        Ok(thread_val(m, &t))
    });
    def!("fleet-ts", 1, Some(1), |m, a| {
        // (fleet-ts fleet): a tuple space partitioned across the shards.
        let fleet = want_native::<Fleet>(m, a, 0, "fleet-ts")?;
        Ok(m.native(ShardedSpace::new(&fleet).to_value()))
    });
    def!("fleet-ts-put", 2, Some(2), |m, a| {
        let ts = want_native::<ShardedSpace>(m, a, 0, "fleet-ts-put")?;
        let items = want_list(m, a, 1, "fleet-ts-put")?;
        let mut fields = Vec::with_capacity(items.len());
        for &it in &items {
            fields.push(m.to_value(it)?);
        }
        ts.put(fields);
        Ok(Val::Unit)
    });
    def!("fleet-ts-get", 2, Some(3), |m, a| {
        // (fleet-ts-get sts tmpl [ms]): #f if nothing matched within `ms`.
        let ts = want_native::<ShardedSpace>(m, a, 0, "fleet-ts-get")?;
        let t = want_template(m, a, 1, "fleet-ts-get")?;
        if a > 2 {
            let ms = want_ms(m, a, 2, "fleet-ts-get")?;
            match ts.get_timeout(&t, ms) {
                Some(b) => Ok(bindings_to_val(m, b)),
                None => Ok(Val::Bool(false)),
            }
        } else {
            let b = ts.get(&t);
            Ok(bindings_to_val(m, b))
        }
    });
    def!("fleet-ts-rd", 2, Some(3), |m, a| {
        // (fleet-ts-rd sts tmpl [ms]): #f if nothing matched within `ms`.
        let ts = want_native::<ShardedSpace>(m, a, 0, "fleet-ts-rd")?;
        let t = want_template(m, a, 1, "fleet-ts-rd")?;
        if a > 2 {
            let ms = want_ms(m, a, 2, "fleet-ts-rd")?;
            match ts.rd_timeout(&t, ms) {
                Some(b) => Ok(bindings_to_val(m, b)),
                None => Ok(Val::Bool(false)),
            }
        } else {
            let b = ts.rd(&t);
            Ok(bindings_to_val(m, b))
        }
    });
    def!("fleet-ts-try-get", 2, Some(2), |m, a| {
        let ts = want_native::<ShardedSpace>(m, a, 0, "fleet-ts-try-get")?;
        let t = want_template(m, a, 1, "fleet-ts-try-get")?;
        match ts.try_get(&t) {
            Some(b) => Ok(bindings_to_val(m, b)),
            None => Ok(Val::Bool(false)),
        }
    });
    def!("fleet-ts-try-rd", 2, Some(2), |m, a| {
        let ts = want_native::<ShardedSpace>(m, a, 0, "fleet-ts-try-rd")?;
        let t = want_template(m, a, 1, "fleet-ts-try-rd")?;
        match ts.try_rd(&t) {
            Some(b) => Ok(bindings_to_val(m, b)),
            None => Ok(Val::Bool(false)),
        }
    });
    def!("fleet-audit", 1, Some(1), |m, a| {
        // The fleet-wide merged replay through the invariant linter,
        // rendered as a string (shards' rings merge on the Lamport clock).
        let fleet = want_native::<Fleet>(m, a, 0, "fleet-audit")?;
        let report = fleet.trace_audit();
        Ok(m.string(&report.to_string()))
    });
    def!("fleet-handoffs", 1, Some(1), |m, a| {
        // Threads handed off between shards, summed over the fleet.
        let fleet = want_native::<Fleet>(m, a, 0, "fleet-handoffs")?;
        let n: u64 = fleet
            .shards()
            .iter()
            .map(|vm| vm.counters().snapshot().handoffs)
            .sum();
        Ok(Val::Int(n as i64))
    });
    def!("fleet-shutdown", 1, Some(1), |m, a| {
        let fleet = want_native::<Fleet>(m, a, 0, "fleet-shutdown")?;
        fleet.shutdown();
        Ok(Val::Unit)
    });

    // --- fluids (dynamic bindings) ---------------------------------------
    def!("make-fluid", 1, Some(1), |m, a| {
        use std::sync::atomic::{AtomicU64, Ordering};
        static NEXT: AtomicU64 = AtomicU64::new(1);
        let id = NEXT.fetch_add(1, Ordering::Relaxed);
        let init = m.arg(a, 0);
        let sv = m.to_value(init)?;
        m.fluids.insert(id, sv);
        Ok(m.native(Value::native("fluid", Arc::new(Fluid { id }))))
    });
    def!("fluid-ref", 1, Some(1), |m, a| {
        let f = want_native::<Fluid>(m, a, 0, "fluid-ref")?;
        match m.fluids.get(&f.id).cloned() {
            Some(v) => Ok(m.from_value(&v)),
            None => Ok(Val::Bool(false)),
        }
    });
    def!("fluid-set!", 2, Some(2), |m, a| {
        let f = want_native::<Fluid>(m, a, 0, "fluid-set!")?;
        let v = m.arg(a, 1);
        let sv = m.to_value(v)?;
        m.fluids.insert(f.id, sv);
        Ok(Val::Unit)
    });

    // --- introspection -----------------------------------------------------
    def!("substrate-counter", 1, Some(1), |m, a| {
        let which = want_sym(m, a, 0, "substrate-counter")?;
        let cx = cx()?;
        let snap = cx.vm().counters().snapshot();
        let n = match which.as_str().as_ref() {
            "threads-created" => snap.threads_created,
            "tcbs-allocated" => snap.tcbs_allocated,
            "stacks-recycled" => snap.stacks_recycled,
            "steals" => snap.steals,
            "context-switches" => snap.context_switches,
            "yields" => snap.yields,
            "preemptions" => snap.preemptions,
            "blocks" => snap.blocks,
            "wakeups" => snap.wakeups,
            "migrations" => snap.migrations,
            "handoffs" => snap.handoffs,
            "routed-ops" => snap.routed_ops,
            "determinations" => snap.determinations,
            "exceptions" => snap.exceptions,
            other => return Err(rerr(format!("substrate-counter: unknown counter {other}"))),
        };
        Ok(Val::Int(n as i64))
    });
    def!("gc-stats", 0, Some(0), |m, _a| {
        let s = m.heap.stats();
        let items = [
            Val::Int(s.minor_collections as i64),
            Val::Int(s.major_collections as i64),
            Val::Int(s.words_allocated as i64),
            Val::Int(s.words_copied as i64),
            Val::Int(s.promotions as i64),
        ];
        for it in items {
            m.push(it);
        }
        Ok(m.list_from_stack(5))
    });
    // (vm-metrics) -> ((name count min-ns mean-ns p50-ns p99-ns max-ns) ...)
    // for dispatch, steal, block-wake and gc-pause latency histograms (see
    // `sting_core::metrics`; scheduler rows are 1-in-N sampled).
    // (vm-metrics fleet) -> ((shard rows) ...): the same rows per shard.
    def!("vm-metrics", 0, Some(1), |m, a| {
        if a > 0 {
            let fleet = want_native::<Fleet>(m, a, 0, "vm-metrics")?;
            let shards: Vec<Arc<Vm>> = fleet.shards().to_vec();
            for (s, vm) in shards.iter().enumerate() {
                m.push(Val::Int(s as i64));
                let rows = metrics_rows(m, vm);
                m.push(rows);
                let entry = m.list_from_stack(2);
                m.push(entry);
            }
            return Ok(m.list_from_stack(shards.len()));
        }
        let vm = cx()?.vm().clone();
        Ok(metrics_rows(m, &vm))
    });
    // (vm-io-stats) -> (backend syscalls wakes): the VM's reactor-driver
    // counters — which backend the I/O driver resolved to ("epoll",
    // "uring", or "unstarted" before any I/O), how many kernel
    // round-trips that backend has made, and how many parked threads its
    // dispatch woke.  syscalls/wakes is the per-wake syscall cost the
    // io_uring backend exists to shrink.
    def!("vm-io-stats", 0, Some(0), |m, _a| {
        let vm = cx()?.vm().clone();
        let stats = vm.io_driver().stats();
        m.push(Val::Sym(Symbol::intern(stats.backend).index()));
        m.push(Val::Int(stats.syscalls as i64));
        m.push(Val::Int(stats.wakes as i64));
        Ok(m.list_from_stack(3))
    });

    // --- sockets --------------------------------------------------------
    // Reactor-backed TCP (sting_core::net): each call blocks only the
    // calling STING thread; the optional trailing `ms` argument turns the
    // call into its deadline variant, returning the symbol `timeout`.
    def!("tcp-listen", 1, Some(1), |m, a| {
        let port = want_int(m, a, 0, "tcp-listen")?;
        let l = TcpListener::bind([0, 0, 0, 0], port.clamp(0, 65535) as u16)
            .map_err(|e| rerr(format!("tcp-listen: {e}")))?;
        Ok(m.native(Value::native("tcp-listener", Arc::new(l))))
    });
    def!("tcp-local-port", 1, Some(1), |m, a| {
        let l = want_native::<TcpListener>(m, a, 0, "tcp-local-port")?;
        let port = l
            .local_port()
            .map_err(|e| rerr(format!("tcp-local-port: {e}")))?;
        Ok(Val::Int(i64::from(port)))
    });
    def!("tcp-accept", 1, Some(2), |m, a| {
        let l = want_native::<TcpListener>(m, a, 0, "tcp-accept")?;
        let r = if a > 1 {
            let ms = want_ms(m, a, 1, "tcp-accept")?;
            l.accept_deadline(Instant::now() + ms)
        } else {
            l.accept()
        };
        match r {
            Ok(s) => Ok(m.native(Value::native("tcp-stream", Arc::new(s)))),
            Err(e) if e.is_timeout() => Ok(Val::Sym(Symbol::intern("timeout").index())),
            Err(e) => Err(rerr(format!("tcp-accept: {e}"))),
        }
    });
    def!("tcp-connect", 1, Some(2), |m, a| {
        // (tcp-connect port [ms]): loopback only — the substrate is a
        // concurrency testbed, not a sockets library.
        let port = want_int(m, a, 0, "tcp-connect")?.clamp(0, 65535) as u16;
        let r = if a > 1 {
            let ms = want_ms(m, a, 1, "tcp-connect")?;
            TcpStream::connect_deadline(LOCALHOST, port, Instant::now() + ms)
        } else {
            TcpStream::connect(LOCALHOST, port)
        };
        match r {
            Ok(s) => Ok(m.native(Value::native("tcp-stream", Arc::new(s)))),
            Err(e) if e.is_timeout() => Ok(Val::Sym(Symbol::intern("timeout").index())),
            Err(e) => Err(rerr(format!("tcp-connect: {e}"))),
        }
    });
    def!("tcp-read", 2, Some(3), |m, a| {
        // (tcp-read s n [ms]): up to n bytes as a string (lossy UTF-8),
        // the eof object at end-of-stream, `timeout` past the deadline.
        let s = want_native::<TcpStream>(m, a, 0, "tcp-read")?;
        let n = want_int(m, a, 1, "tcp-read")?.clamp(1, 1 << 20) as usize;
        let mut buf = vec![0u8; n];
        let r = if a > 2 {
            let ms = want_ms(m, a, 2, "tcp-read")?;
            s.read_deadline(&mut buf, Instant::now() + ms)
        } else {
            s.read(&mut buf)
        };
        match r {
            Ok(0) => Ok(Val::Eof),
            Ok(n) => Ok(m.string(&String::from_utf8_lossy(&buf[..n]))),
            Err(e) if e.is_timeout() => Ok(Val::Sym(Symbol::intern("timeout").index())),
            Err(e) => Err(rerr(format!("tcp-read: {e}"))),
        }
    });
    def!("tcp-write", 2, Some(3), |m, a| {
        // (tcp-write s str [ms]): writes the whole string; `timeout` past
        // the deadline (a prefix may already be out).
        let s = want_native::<TcpStream>(m, a, 0, "tcp-write")?;
        let data = want_string(m, a, 1, "tcp-write")?;
        let r = if a > 2 {
            let ms = want_ms(m, a, 2, "tcp-write")?;
            s.write_all_deadline(data.as_bytes(), Instant::now() + ms)
        } else {
            s.write_all(data.as_bytes())
        };
        match r {
            Ok(()) => Ok(Val::Unit),
            Err(e) if e.is_timeout() => Ok(Val::Sym(Symbol::intern("timeout").index())),
            Err(e) => Err(rerr(format!("tcp-write: {e}"))),
        }
    });
    def!("tcp-close", 1, Some(1), |m, a| {
        // Explicit close: the heap may hold the handle until collection,
        // so shut the socket down now (EOF to the peer).
        let s = want_native::<TcpStream>(m, a, 0, "tcp-close")?;
        s.close();
        Ok(Val::Unit)
    });
}

fn thread_list(
    m: &mut Machine,
    argc: usize,
    i: usize,
    who: &str,
) -> Result<Vec<Arc<Thread>>, SchemeError> {
    let items = want_list(m, argc, i, who)?;
    items
        .iter()
        .map(|&v| match v {
            Val::Native(slot) => m
                .heap
                .native(slot)
                .native_as::<Thread>()
                .ok_or_else(|| rerr(format!("{who}: list must contain threads"))),
            _ => Err(rerr(format!("{who}: list must contain threads"))),
        })
        .collect()
}
