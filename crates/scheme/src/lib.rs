//! # sting-scheme — the STING computation language
//!
//! A Scheme dialect compiled to bytecode and executed on STING threads,
//! reproducing the paper's computation sublanguage (Orbit-compiled Scheme
//! in the original).  The pipeline is
//! [`reader`] → [`expand`] → [`compile`] → [`machine`]:
//!
//! * every thread runs its own [`Machine`](machine::Machine) with a
//!   private generational heap (`sting-areas`) — threads collect garbage
//!   independently, with no global synchronization;
//! * the machine polls the thread controller every few hundred
//!   instructions, so Scheme threads are preemptible;
//! * all substrate operations — `fork-thread`, `create-thread`,
//!   `thread-value` (with stealing), `yield-processor`, mutexes, streams,
//!   tuple spaces, `wait-for-one`/`wait-for-all` — are primitives
//!   ([`concurrency`]);
//! * values cross threads by conversion to immutable substrate values
//!   (copy-on-share; see DESIGN.md).
//!
//! ```
//! use sting_core::VmBuilder;
//! use sting_scheme::Interp;
//!
//! let vm = VmBuilder::new().vps(1).build();
//! let interp = Interp::new(vm.clone());
//! let v = interp.eval("(define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2))))) (fib 10)").unwrap();
//! assert_eq!(v.as_int(), Some(55));
//! vm.shutdown();
//! ```

#![deny(missing_docs)]

pub mod bytecode;
pub mod compile;
pub mod concurrency;
pub mod convert;
pub mod error;
pub mod expand;
pub mod global;
pub mod interp;
pub mod machine;
pub mod prims;
pub mod print;
pub mod reader;
pub mod sexp;

pub use error::SchemeError;
pub use interp::Interp;
pub use sexp::{Sexp, Span};

/// The prelude source (library procedures written in Scheme), evaluated
/// once per [`Interp`] and prepended by the static analyzer so analyzed
/// programs resolve the same bindings the interpreter provides.
pub const PRELUDE: &str = include_str!("prelude.scm");
