//! Scheme error types.

use std::error::Error;
use std::fmt;
use sting_value::Value;

/// Errors from reading, expanding, compiling or running Scheme code.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SchemeError {
    /// Reader (parse) error.
    Read(String),
    /// Syntax (expansion) error.
    Syntax(String),
    /// Compile-time error (unbound variable, bad arity in a form).
    Compile(String),
    /// A raised, uncaught Scheme exception (carries the raised value).
    Raised(Value),
    /// The virtual machine rejected the operation.
    Vm(String),
}

impl SchemeError {
    /// A runtime error raised with a descriptive message, as a raised
    /// value of the shape `(error "message")`.
    pub fn runtime(msg: impl Into<String>) -> SchemeError {
        SchemeError::Raised(Value::list([Value::sym("error"), Value::from(msg.into())]))
    }
}

impl fmt::Display for SchemeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemeError::Read(m) => write!(f, "read error: {m}"),
            SchemeError::Syntax(m) => write!(f, "syntax error: {m}"),
            SchemeError::Compile(m) => write!(f, "compile error: {m}"),
            SchemeError::Raised(v) => write!(f, "uncaught exception: {v}"),
            SchemeError::Vm(m) => write!(f, "vm error: {m}"),
        }
    }
}

impl Error for SchemeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert!(SchemeError::Read("x".into()).to_string().contains("read"));
        assert!(SchemeError::runtime("boom").to_string().contains("boom"));
    }
}
