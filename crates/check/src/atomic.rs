//! Drop-in atomic types that route through the model when one is active.
//!
//! Outside a [`model`](crate::model) run every operation delegates straight
//! to the real `std::sync::atomic` type, so code compiled against these
//! shims (`--cfg sting_check`) still behaves normally in ordinary unit
//! tests.  Inside a run, each operation is a scheduling point followed by an
//! operation on the operational memory model; the real atomic is kept as a
//! *mirror* of the newest store so `get_mut`/`Drop` paths and re-registration
//! observe coherent values.
//!
//! Modeling notes: `compare_exchange_weak` never fails spuriously here (a
//! spurious failure is observationally a retry that the schedule explorer
//! already covers via CAS races), and only `SeqCst` fences are modeled.

use crate::exec;
use std::fmt;
use std::sync::atomic::AtomicU64 as LocCell;
pub use std::sync::atomic::Ordering;

macro_rules! int_atomic {
    ($(#[$meta:meta])* $name:ident, $prim:ty, $std:ty) => {
        $(#[$meta])*
        pub struct $name {
            std: $std,
            loc: LocCell,
        }

        // The casts are identities for the u64-sized instantiation.
        #[allow(clippy::unnecessary_cast)]
        impl $name {
            /// Creates a new atomic with the given initial value.
            pub const fn new(v: $prim) -> $name {
                $name {
                    std: <$std>::new(v),
                    loc: LocCell::new(0),
                }
            }

            fn loc(&self) -> usize {
                exec::resolve_loc(&self.loc, self.std.load(Ordering::Relaxed) as u64)
            }

            /// Atomic load.
            pub fn load(&self, ord: Ordering) -> $prim {
                if exec::active() {
                    exec::schedule_point();
                    exec::load(self.loc(), ord) as $prim
                } else {
                    self.std.load(ord)
                }
            }

            /// Atomic store.
            pub fn store(&self, v: $prim, ord: Ordering) {
                if exec::active() {
                    exec::schedule_point();
                    exec::store(self.loc(), v as u64, ord);
                    self.std.store(v, Ordering::Relaxed);
                } else {
                    self.std.store(v, ord);
                }
            }

            /// Atomic swap.
            pub fn swap(&self, v: $prim, ord: Ordering) -> $prim {
                if exec::active() {
                    exec::schedule_point();
                    let old = exec::rmw(self.loc(), |_| Some(v as u64), ord, Ordering::Relaxed)
                        .expect("unconditional rmw");
                    self.std.store(v, Ordering::Relaxed);
                    old as $prim
                } else {
                    self.std.swap(v, ord)
                }
            }

            /// Atomic compare-and-exchange.
            pub fn compare_exchange(
                &self,
                current: $prim,
                new: $prim,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$prim, $prim> {
                if exec::active() {
                    exec::schedule_point();
                    let res = exec::rmw(
                        self.loc(),
                        |cur| (cur == current as u64).then_some(new as u64),
                        success,
                        failure,
                    );
                    if res.is_ok() {
                        self.std.store(new, Ordering::Relaxed);
                    }
                    res.map(|v| v as $prim).map_err(|v| v as $prim)
                } else {
                    self.std.compare_exchange(current, new, success, failure)
                }
            }

            /// Atomic compare-and-exchange; in the model this is as strong
            /// as [`compare_exchange`](Self::compare_exchange) (see module
            /// docs).
            pub fn compare_exchange_weak(
                &self,
                current: $prim,
                new: $prim,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$prim, $prim> {
                if exec::active() {
                    self.compare_exchange(current, new, success, failure)
                } else {
                    self.std.compare_exchange_weak(current, new, success, failure)
                }
            }

            /// Atomic wrapping add, returning the previous value.
            pub fn fetch_add(&self, d: $prim, ord: Ordering) -> $prim {
                self.fetch_update_model(ord, |cur| cur.wrapping_add(d as u64), || {
                    self.std.fetch_add(d, ord)
                })
            }

            /// Atomic wrapping subtract, returning the previous value.
            pub fn fetch_sub(&self, d: $prim, ord: Ordering) -> $prim {
                self.fetch_update_model(ord, |cur| cur.wrapping_sub(d as u64), || {
                    self.std.fetch_sub(d, ord)
                })
            }

            /// Atomic bitwise OR, returning the previous value (the
            /// occupancy-bit publish in `sting_core::deque::MultiDeque`).
            pub fn fetch_or(&self, d: $prim, ord: Ordering) -> $prim {
                self.fetch_update_model(ord, |cur| cur | (d as u64), || {
                    self.std.fetch_or(d, ord)
                })
            }

            /// Atomic bitwise AND, returning the previous value (the
            /// occupancy-bit clear in `sting_core::deque::MultiDeque`).
            pub fn fetch_and(&self, d: $prim, ord: Ordering) -> $prim {
                self.fetch_update_model(ord, |cur| cur & (d as u64), || {
                    self.std.fetch_and(d, ord)
                })
            }

            fn fetch_update_model(
                &self,
                ord: Ordering,
                f: impl Fn(u64) -> u64,
                real: impl FnOnce() -> $prim,
            ) -> $prim {
                if exec::active() {
                    exec::schedule_point();
                    let old = exec::rmw(self.loc(), |cur| Some(f(cur)), ord, Ordering::Relaxed)
                        .expect("unconditional rmw");
                    self.std.store(f(old) as $prim, Ordering::Relaxed);
                    old as $prim
                } else {
                    real()
                }
            }

            /// Exclusive access to the value (always served by the mirror,
            /// which holds the newest store during a model run).
            pub fn get_mut(&mut self) -> &mut $prim {
                self.std.get_mut()
            }

            /// Consumes the atomic, returning its value.
            pub fn into_inner(self) -> $prim {
                self.std.into_inner()
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.debug_tuple(stringify!($name))
                    .field(&self.std.load(Ordering::Relaxed))
                    .finish()
            }
        }

        impl Default for $name {
            fn default() -> $name {
                $name::new(<$prim>::default())
            }
        }
    };
}

int_atomic!(
    /// Model-checked stand-in for [`std::sync::atomic::AtomicUsize`].
    AtomicUsize,
    usize,
    std::sync::atomic::AtomicUsize
);
int_atomic!(
    /// Model-checked stand-in for [`std::sync::atomic::AtomicIsize`].
    AtomicIsize,
    isize,
    std::sync::atomic::AtomicIsize
);
int_atomic!(
    /// Model-checked stand-in for [`std::sync::atomic::AtomicU64`].
    AtomicU64,
    u64,
    std::sync::atomic::AtomicU64
);

/// Model-checked stand-in for [`std::sync::atomic::AtomicBool`].
pub struct AtomicBool {
    std: std::sync::atomic::AtomicBool,
    loc: LocCell,
}

impl AtomicBool {
    /// Creates a new atomic with the given initial value.
    pub const fn new(v: bool) -> AtomicBool {
        AtomicBool {
            std: std::sync::atomic::AtomicBool::new(v),
            loc: LocCell::new(0),
        }
    }

    fn loc(&self) -> usize {
        exec::resolve_loc(&self.loc, self.std.load(Ordering::Relaxed) as u64)
    }

    /// Atomic load.
    pub fn load(&self, ord: Ordering) -> bool {
        if exec::active() {
            exec::schedule_point();
            exec::load(self.loc(), ord) != 0
        } else {
            self.std.load(ord)
        }
    }

    /// Atomic store.
    pub fn store(&self, v: bool, ord: Ordering) {
        if exec::active() {
            exec::schedule_point();
            exec::store(self.loc(), v as u64, ord);
            self.std.store(v, Ordering::Relaxed);
        } else {
            self.std.store(v, ord);
        }
    }

    /// Atomic swap.
    pub fn swap(&self, v: bool, ord: Ordering) -> bool {
        if exec::active() {
            exec::schedule_point();
            let old = exec::rmw(self.loc(), |_| Some(v as u64), ord, Ordering::Relaxed)
                .expect("unconditional rmw");
            self.std.store(v, Ordering::Relaxed);
            old != 0
        } else {
            self.std.swap(v, ord)
        }
    }

    /// Exclusive access to the value.
    pub fn get_mut(&mut self) -> &mut bool {
        self.std.get_mut()
    }
}

impl fmt::Debug for AtomicBool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("AtomicBool")
            .field(&self.std.load(Ordering::Relaxed))
            .finish()
    }
}

impl Default for AtomicBool {
    fn default() -> AtomicBool {
        AtomicBool::new(false)
    }
}

/// Model-checked stand-in for [`std::sync::atomic::AtomicPtr`].
pub struct AtomicPtr<T> {
    std: std::sync::atomic::AtomicPtr<T>,
    loc: LocCell,
}

impl<T> AtomicPtr<T> {
    /// Creates a new atomic with the given initial pointer.
    pub const fn new(p: *mut T) -> AtomicPtr<T> {
        AtomicPtr {
            std: std::sync::atomic::AtomicPtr::new(p),
            loc: LocCell::new(0),
        }
    }

    fn loc(&self) -> usize {
        exec::resolve_loc(&self.loc, self.std.load(Ordering::Relaxed) as u64)
    }

    /// Atomic load.
    pub fn load(&self, ord: Ordering) -> *mut T {
        if exec::active() {
            exec::schedule_point();
            exec::load(self.loc(), ord) as *mut T
        } else {
            self.std.load(ord)
        }
    }

    /// Atomic store.
    pub fn store(&self, p: *mut T, ord: Ordering) {
        if exec::active() {
            exec::schedule_point();
            exec::store(self.loc(), p as u64, ord);
            self.std.store(p, Ordering::Relaxed);
        } else {
            self.std.store(p, ord);
        }
    }

    /// Atomic swap.
    pub fn swap(&self, p: *mut T, ord: Ordering) -> *mut T {
        if exec::active() {
            exec::schedule_point();
            let old = exec::rmw(self.loc(), |_| Some(p as u64), ord, Ordering::Relaxed)
                .expect("unconditional rmw");
            self.std.store(p, Ordering::Relaxed);
            old as *mut T
        } else {
            self.std.swap(p, ord)
        }
    }

    /// Atomic compare-and-exchange.
    pub fn compare_exchange(
        &self,
        current: *mut T,
        new: *mut T,
        success: Ordering,
        failure: Ordering,
    ) -> Result<*mut T, *mut T> {
        if exec::active() {
            exec::schedule_point();
            let res = exec::rmw(
                self.loc(),
                |cur| (cur == current as u64).then_some(new as u64),
                success,
                failure,
            );
            if res.is_ok() {
                self.std.store(new, Ordering::Relaxed);
            }
            res.map(|v| v as *mut T).map_err(|v| v as *mut T)
        } else {
            self.std.compare_exchange(current, new, success, failure)
        }
    }

    /// Atomic compare-and-exchange; as strong as
    /// [`compare_exchange`](Self::compare_exchange) in the model.
    pub fn compare_exchange_weak(
        &self,
        current: *mut T,
        new: *mut T,
        success: Ordering,
        failure: Ordering,
    ) -> Result<*mut T, *mut T> {
        if exec::active() {
            self.compare_exchange(current, new, success, failure)
        } else {
            self.std
                .compare_exchange_weak(current, new, success, failure)
        }
    }

    /// Exclusive access to the pointer.
    pub fn get_mut(&mut self) -> &mut *mut T {
        self.std.get_mut()
    }
}

impl<T> fmt::Debug for AtomicPtr<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("AtomicPtr")
            .field(&self.std.load(Ordering::Relaxed))
            .finish()
    }
}

impl<T> Default for AtomicPtr<T> {
    fn default() -> AtomicPtr<T> {
        AtomicPtr::new(std::ptr::null_mut())
    }
}

/// Model-checked stand-in for [`std::sync::atomic::fence`].
pub fn fence(ord: Ordering) {
    if exec::active() {
        exec::schedule_point();
        exec::fence(ord);
    } else {
        std::sync::atomic::fence(ord);
    }
}
