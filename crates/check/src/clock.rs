//! Vector clocks and thread views for the operational memory model.

/// A plain vector clock over model-thread ids.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub(crate) struct VClock {
    slots: Vec<u32>,
}

impl VClock {
    pub(crate) fn get(&self, thread: usize) -> u32 {
        self.slots.get(thread).copied().unwrap_or(0)
    }

    pub(crate) fn set(&mut self, thread: usize, time: u32) {
        if self.slots.len() <= thread {
            self.slots.resize(thread + 1, 0);
        }
        self.slots[thread] = time;
    }

    pub(crate) fn join(&mut self, other: &VClock) {
        if self.slots.len() < other.slots.len() {
            self.slots.resize(other.slots.len(), 0);
        }
        for (mine, theirs) in self.slots.iter_mut().zip(other.slots.iter()) {
            *mine = (*mine).max(*theirs);
        }
    }
}

/// Everything a thread "knows": which store events happen-before it (the
/// vector clock) and, per location, the oldest store it is still allowed to
/// read (the coherence floor, maintaining read-read coherence across both
/// program order and synchronizes-with edges).
///
/// Release messages carry a full `View` snapshot so that acquiring a store
/// transfers not only the writer's event knowledge but also its read
/// obligations — C11 coherence (CoRR) applies across happens-before, not just
/// within one thread.
#[derive(Clone, Debug, Default)]
pub(crate) struct View {
    pub(crate) clock: VClock,
    floors: Vec<usize>,
}

impl View {
    /// Index of the oldest store of `loc` this view may still read.
    pub(crate) fn floor(&self, loc: usize) -> usize {
        self.floors.get(loc).copied().unwrap_or(0)
    }

    /// Raises the coherence floor for `loc` to at least `store_index`.
    pub(crate) fn raise_floor(&mut self, loc: usize, store_index: usize) {
        if self.floors.len() <= loc {
            self.floors.resize(loc + 1, 0);
        }
        self.floors[loc] = self.floors[loc].max(store_index);
    }

    /// Whether the store event `(writer, time)` happens-before this view.
    /// The initial store of every location (no writer) is always known.
    pub(crate) fn knows(&self, writer: usize, time: u32) -> bool {
        writer == usize::MAX || self.clock.get(writer) >= time
    }

    pub(crate) fn join(&mut self, other: &View) {
        self.clock.join(&other.clock);
        if self.floors.len() < other.floors.len() {
            self.floors.resize(other.floors.len(), 0);
        }
        for (mine, theirs) in self.floors.iter_mut().zip(other.floors.iter()) {
            *mine = (*mine).max(*theirs);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_join_is_pointwise_max() {
        let mut a = VClock::default();
        a.set(0, 3);
        a.set(2, 1);
        let mut b = VClock::default();
        b.set(0, 1);
        b.set(1, 7);
        a.join(&b);
        assert_eq!(a.get(0), 3);
        assert_eq!(a.get(1), 7);
        assert_eq!(a.get(2), 1);
        assert_eq!(a.get(9), 0);
    }

    #[test]
    fn view_floors_join_and_raise() {
        let mut v = View::default();
        assert_eq!(v.floor(4), 0);
        v.raise_floor(4, 2);
        v.raise_floor(4, 1);
        assert_eq!(v.floor(4), 2);
        let mut w = View::default();
        w.raise_floor(4, 5);
        v.join(&w);
        assert_eq!(v.floor(4), 5);
    }

    #[test]
    fn init_store_is_always_known() {
        let v = View::default();
        assert!(v.knows(usize::MAX, 0));
        assert!(!v.knows(0, 1));
    }
}
