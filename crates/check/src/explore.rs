//! The exploration driver: runs a scenario closure under every interleaving
//! the trail enumerates, reporting the first failing execution in detail.

use crate::exec::{self, HostAction, ModelState, OpKind, OpRecord, Opts};
use crate::trail::Trail;
use std::panic::{self, AssertUnwindSafe};
use std::sync::Arc;
use sting_context::FiberResult;

/// Configuration for a model-checking run.
#[derive(Clone, Copy, Debug)]
pub struct Builder {
    /// Maximum number of involuntary context switches per execution
    /// (`None` = unbounded, i.e. fully exhaustive exploration).  Bounding
    /// preemptions keeps three-thread scenarios tractable; the classic
    /// CHESS result is that almost all concurrency bugs manifest within
    /// two or three preemptions.
    pub preemption_bound: Option<u32>,
    /// Abort (as a failure) any single execution longer than this many
    /// shimmed operations — a livelock detector.
    pub max_ops: u64,
    /// Abort the whole run after this many executions; a state-space
    /// explosion guard, not a correctness bound.
    pub max_executions: u64,
    /// Stack size for model-thread fibers.
    pub stack_size: usize,
}

impl Default for Builder {
    fn default() -> Builder {
        Builder {
            preemption_bound: None,
            max_ops: 20_000,
            max_executions: 5_000_000,
            stack_size: 128 * 1024,
        }
    }
}

/// Statistics from a completed (fully explored) model run.
#[derive(Clone, Copy, Debug)]
pub struct Explored {
    /// Number of distinct executions (interleaving × load-value choices).
    pub executions: u64,
}

impl Builder {
    /// Explores every execution of `scenario`.
    ///
    /// # Panics
    ///
    /// Panics with a detailed report if any execution panics (assertion
    /// failure in the scenario, livelock, or deadlock).
    pub fn check<F>(&self, scenario: F) -> Explored
    where
        F: Fn() + Send + Sync + 'static,
    {
        let scenario: Arc<dyn Fn() + Send + Sync> = Arc::new(scenario);
        let opts = Opts {
            preemption_bound: self.preemption_bound,
            max_ops: self.max_ops,
            stack_size: self.stack_size,
        };
        let mut trail = Trail::default();
        let mut executions: u64 = 0;
        loop {
            executions += 1;
            assert!(
                executions <= self.max_executions,
                "model exceeded {} executions; bound preemptions or shrink \
                 the scenario",
                self.max_executions
            );
            trail.begin();
            if let Err(report) = run_one(opts, &scenario, &mut trail, executions) {
                panic!("{report}");
            }
            if !trail.advance() {
                break;
            }
        }
        Explored { executions }
    }
}

/// Explores `scenario` exhaustively with the default [`Builder`].
pub fn model<F>(scenario: F) -> Explored
where
    F: Fn() + Send + Sync + 'static,
{
    Builder::default().check(scenario)
}

/// Explores `scenario` with a preemption bound — use for three-plus-thread
/// scenarios where exhaustive exploration is intractable.
pub fn model_bounded<F>(preemptions: u32, scenario: F) -> Explored
where
    F: Fn() + Send + Sync + 'static,
{
    Builder {
        preemption_bound: Some(preemptions),
        ..Builder::default()
    }
    .check(scenario)
}

/// Asserts that the checker *finds* a failing execution of `scenario`, and
/// returns the failure report.  This is the mutation-testing helper: weaken
/// an ordering a protocol depends on and prove the checker notices.
///
/// # Panics
///
/// Panics if every execution of `scenario` passes.
pub fn model_expect_failure<F>(scenario: F) -> String
where
    F: Fn() + Send + Sync + 'static,
{
    match panic::catch_unwind(AssertUnwindSafe(|| model(scenario))) {
        Ok(explored) => panic!(
            "expected the model checker to find a failure, but all {} \
             executions passed",
            explored.executions
        ),
        Err(payload) => payload_message(&*payload),
    }
}

/// Like [`model_expect_failure`] but with a preemption bound.
pub fn model_bounded_expect_failure<F>(preemptions: u32, scenario: F) -> String
where
    F: Fn() + Send + Sync + 'static,
{
    match panic::catch_unwind(AssertUnwindSafe(|| model_bounded(preemptions, scenario))) {
        Ok(explored) => panic!(
            "expected the model checker to find a failure, but all {} \
             executions passed",
            explored.executions
        ),
        Err(payload) => payload_message(&*payload),
    }
}

fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else {
        "<non-string panic payload>".to_string()
    }
}

fn run_one(
    opts: Opts,
    scenario: &Arc<dyn Fn() + Send + Sync>,
    trail: &mut Trail,
    execution: u64,
) -> Result<(), String> {
    exec::install(ModelState::new(opts, std::mem::take(trail)));
    let root = scenario.clone();
    exec::spawn_thread(Box::new(move || root()));

    let mut failure: Option<String> = None;
    loop {
        match exec::host_pick() {
            HostAction::Done => break,
            HostAction::Deadlock(msg) => {
                failure = Some(msg);
                break;
            }
            HostAction::Run(id, mut fiber) => {
                match panic::catch_unwind(AssertUnwindSafe(|| fiber.resume(()))) {
                    Ok(FiberResult::Yield(())) => exec::host_yielded(id, fiber),
                    Ok(FiberResult::Return(())) => exec::host_finished(id),
                    Err(payload) => {
                        failure = Some(payload_message(&*payload));
                        break;
                    }
                }
            }
        }
    }

    // Cleanup mode first: the forced unwinds below run scenario destructors
    // (which may touch shim atomics) and must bypass the model.
    let fibers = exec::begin_cleanup();
    drop(fibers);
    let state = exec::uninstall();
    let depth = state.trail.depth();
    *trail = state.trail;

    match failure {
        None => Ok(()),
        Some(msg) => Err(render_failure(&msg, execution, depth, &state.log)),
    }
}

fn render_failure(msg: &str, execution: u64, depth: usize, log: &[OpRecord]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "model check failed: {msg}");
    let _ = writeln!(
        out,
        "(execution #{execution}, {depth} recorded choice points)"
    );
    let _ = writeln!(
        out,
        "--- failing execution (last {} ops) ---",
        log.len().min(160)
    );
    let start = log.len().saturating_sub(160);
    for rec in &log[start..] {
        let _ = writeln!(out, "{}", render_op(rec));
    }
    out
}

fn render_op(rec: &OpRecord) -> String {
    let t = rec.thread;
    match rec.kind {
        OpKind::Load => format!(
            "  [t{t}] load   loc{} -> {:#x} (store #{}, {:?})",
            rec.loc, rec.a, rec.b, rec.ord
        ),
        OpKind::Store => format!(
            "  [t{t}] store  loc{} <- {:#x} ({:?})",
            rec.loc, rec.a, rec.ord
        ),
        OpKind::RmwOk => format!(
            "  [t{t}] rmw    loc{} {:#x} -> {:#x} ({:?})",
            rec.loc, rec.a, rec.b, rec.ord
        ),
        OpKind::RmwFail => format!(
            "  [t{t}] rmw-fail loc{} observed {:#x} ({:?})",
            rec.loc, rec.a, rec.ord
        ),
        OpKind::Fence => format!("  [t{t}] fence  ({:?})", rec.ord),
        OpKind::Spawn => format!("  [t{t}] spawn  t{}", rec.a),
        OpKind::Finish => format!("  [t{t}] finish"),
        OpKind::Pick => format!("  ---- run t{} ----", rec.a),
    }
}
