//! # sting-check — an in-tree interleaving model checker
//!
//! A loom-style stateless model checker for the STING substrate's lock-free
//! core, vendored in-tree because the build environment has no access to
//! crates.io.  A scenario is a closure over shimmed atomics
//! ([`atomic::AtomicUsize`], [`atomic::AtomicPtr`], …) and model threads
//! ([`thread::spawn`]); [`model`] re-runs it under *every* interleaving and
//! every weak-memory load result an operational C11-style memory model
//! permits, so assertion failures, deadlocks and livelocks in any execution
//! are found deterministically and replayed with a readable trace.
//!
//! `sting-core` compiles its `deque` and `trace` modules against these shim
//! atomics when built with `RUSTFLAGS="--cfg sting_check"`, which means the
//! *production source* — not a transliteration — is what gets checked (see
//! `crates/core/tests/model.rs` and `./ci.sh check`).
//!
//! ## Exploration strategy
//!
//! Iterative depth-first search over a trail of choice points (which thread
//! steps next; which store a load observes), exactly exhaustive by default.
//! Scenarios with three or more threads can use [`model_bounded`] to cap
//! the number of preemptions per execution — the CHESS observation that
//! almost all concurrency bugs need only two or three preemptions keeps
//! this both fast and effective.
//!
//! ## Example
//!
//! ```
//! use sting_check::atomic::{AtomicUsize, Ordering};
//! use sting_check::{model, thread};
//! use std::sync::Arc;
//!
//! model(|| {
//!     let x = Arc::new(AtomicUsize::new(0));
//!     let x2 = x.clone();
//!     let t = thread::spawn(move || x2.store(1, Ordering::Release));
//!     let _ = x.load(Ordering::Acquire);
//!     t.join();
//!     assert_eq!(x.load(Ordering::Relaxed), 1);
//! });
//! ```

#![deny(missing_docs)]

pub mod atomic;
mod clock;
mod exec;
mod explore;
pub mod thread;
mod trail;

pub use explore::{
    model, model_bounded, model_bounded_expect_failure, model_expect_failure, Builder, Explored,
};
