//! The DFS trail: a recorded sequence of nondeterministic choices.
//!
//! Every execution replays the trail's prefix and extends it greedily with
//! choice 0 ("continue the current thread" / "read the newest store").  After
//! an execution finishes, [`Trail::advance`] increments the deepest choice
//! point that still has untried alternatives and truncates everything after
//! it — classic iterative depth-first exploration, the same scheme loom uses.

/// One nondeterministic choice point (scheduling pick or load-value pick).
#[derive(Clone, Copy, Debug)]
struct Point {
    taken: u32,
    total: u32,
}

/// The exploration trail shared by all executions of one `model()` call.
#[derive(Debug, Default)]
pub(crate) struct Trail {
    points: Vec<Point>,
    cursor: usize,
}

impl Trail {
    /// Rewinds the replay cursor; called before each execution.
    pub(crate) fn begin(&mut self) {
        self.cursor = 0;
    }

    /// Resolves the next choice point with `total` alternatives, returning
    /// the branch to take (`0..total`).  Forced choices (`total <= 1`) are
    /// not recorded.
    ///
    /// # Panics
    ///
    /// Panics if a replayed point has a different `total` than it had when
    /// first recorded — the scenario is nondeterministic (e.g. consulted a
    /// real clock or unshimmed shared state), which the checker cannot
    /// explore soundly.
    pub(crate) fn choose(&mut self, total: u32) -> u32 {
        if total <= 1 {
            return 0;
        }
        if self.cursor < self.points.len() {
            let p = self.points[self.cursor];
            assert_eq!(
                p.total, total,
                "model scenario is nondeterministic: a replayed choice point \
                 changed arity ({} -> {})",
                p.total, total
            );
            self.cursor += 1;
            p.taken
        } else {
            self.points.push(Point { taken: 0, total });
            self.cursor += 1;
            0
        }
    }

    /// Moves to the next unexplored branch; `false` when the space is
    /// exhausted.
    pub(crate) fn advance(&mut self) -> bool {
        while let Some(last) = self.points.last_mut() {
            if last.taken + 1 < last.total {
                last.taken += 1;
                return true;
            }
            self.points.pop();
        }
        false
    }

    /// Number of recorded choice points in the current execution.
    pub(crate) fn depth(&self) -> usize {
        self.points.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enumerates_full_tree() {
        // Two binary choices then one ternary: expect 2*2*3 = 12 executions.
        let mut t = Trail::default();
        let mut seen = Vec::new();
        loop {
            t.begin();
            let a = t.choose(2);
            let b = t.choose(2);
            let c = t.choose(3);
            seen.push((a, b, c));
            if !t.advance() {
                break;
            }
        }
        assert_eq!(seen.len(), 12);
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 12);
    }

    #[test]
    fn forced_choices_are_free() {
        let mut t = Trail::default();
        t.begin();
        assert_eq!(t.choose(1), 0);
        assert_eq!(t.depth(), 0);
        assert!(!t.advance());
    }

    #[test]
    fn variable_depth_subtrees() {
        // choice 0 opens a subtree with an extra choice; choice 1 does not.
        let mut t = Trail::default();
        let mut count = 0;
        loop {
            t.begin();
            if t.choose(2) == 0 {
                t.choose(2);
            }
            count += 1;
            if !t.advance() {
                break;
            }
        }
        assert_eq!(count, 3); // (0,0), (0,1), (1)
    }
}
