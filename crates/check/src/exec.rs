//! Per-OS-thread model-execution state: fibers for model threads, the
//! operational weak-memory model, and the host-side scheduling hooks.
//!
//! ## The memory model, operationally
//!
//! Every shimmed atomic location keeps its full *store history* (modification
//! order).  Each model thread carries a [`View`]: a vector clock of store
//! events it has synchronized with plus per-location coherence floors.  A
//! load may read any store `i` of the history such that
//!
//! 1. no *newer* store `j > i` is known to the thread's view (write-read
//!    coherence / happens-before visibility), and
//! 2. `i` is at or above the thread's coherence floor for the location
//!    (read-read coherence, transferred across synchronizes-with edges
//!    because release messages carry full views).
//!
//! Release-ish stores attach a snapshot of the writer's view as a *message*;
//! acquire-ish loads join it.  RMWs always read the newest store (atomicity)
//! and continue the release sequence of the store they replace.  `SeqCst`
//! operations and fences additionally join a global `sc_view` in both
//! directions, which realizes "SC operations are totally ordered by execution
//! order" — slightly stronger than C11's mixed-ordering corner cases, i.e.
//! the checker may miss exotic SC-vs-relaxed bugs but never reports a
//! spurious one.
//!
//! The nondeterminism — which thread steps next, which candidate store a
//! load returns — is resolved by the [`Trail`](crate::trail::Trail), so the
//! whole space is explored by iterative DFS.

use crate::clock::View;
use crate::trail::Trail;
use std::any::Any;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU32, Ordering};
use sting_context::{Fiber, Stack, Suspender};

/// A model fiber: no inputs, no yield payloads, no result.
pub(crate) type ModelFiber = Fiber<(), (), ()>;
type ModelSuspender = Suspender<(), (), ()>;

/// Tuning knobs copied out of the [`Builder`](crate::Builder).
#[derive(Clone, Copy, Debug)]
pub(crate) struct Opts {
    pub(crate) preemption_bound: Option<u32>,
    pub(crate) max_ops: u64,
    pub(crate) stack_size: usize,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Status {
    Runnable,
    Blocked(usize),
    Finished,
}

pub(crate) struct ModelThread {
    fiber: Option<ModelFiber>,
    suspender: usize,
    pub(crate) status: Status,
    view: View,
    time: u32,
    result: Option<Box<dyn Any + Send>>,
}

/// One store in a location's modification order.
struct Store {
    val: u64,
    /// Writing thread, or `usize::MAX` for the initial value.
    writer: usize,
    /// The writer's event time for this store (0 for the initial value).
    time: u32,
    /// Release message: the writer's view at the store, if release-ish
    /// (possibly inherited through a release sequence of RMWs).
    msg: Option<Box<View>>,
}

struct Location {
    stores: Vec<Store>,
}

#[derive(Clone, Copy, Debug)]
pub(crate) enum OpKind {
    Load,
    Store,
    RmwOk,
    RmwFail,
    Fence,
    Spawn,
    Finish,
    Pick,
}

#[derive(Clone, Copy, Debug)]
pub(crate) struct OpRecord {
    pub(crate) thread: usize,
    pub(crate) kind: OpKind,
    pub(crate) loc: usize,
    pub(crate) a: u64,
    pub(crate) b: u64,
    pub(crate) ord: Ordering,
}

/// All state of one model execution (plus the cross-execution trail).
pub(crate) struct ModelState {
    gen: u32,
    opts: Opts,
    pub(crate) trail: Trail,
    threads: Vec<ModelThread>,
    locations: Vec<Location>,
    sc_view: View,
    current: usize,
    ops: u64,
    preemptions: u32,
    cleanup: bool,
    pub(crate) log: Vec<OpRecord>,
}

thread_local! {
    static MODEL: RefCell<Option<ModelState>> = const { RefCell::new(None) };
}

/// Execution generations, so a shim object surviving across executions (or
/// across `model()` calls) never resolves to a stale location id.
static GENERATION: AtomicU32 = AtomicU32::new(1);

impl ModelState {
    pub(crate) fn new(opts: Opts, trail: Trail) -> ModelState {
        ModelState {
            gen: GENERATION.fetch_add(1, Ordering::Relaxed),
            opts,
            trail,
            threads: Vec::new(),
            locations: Vec::new(),
            sc_view: View::default(),
            current: 0,
            ops: 0,
            preemptions: 0,
            cleanup: false,
            log: Vec::new(),
        }
    }
}

pub(crate) fn install(state: ModelState) {
    MODEL.with(|m| {
        let mut slot = m.borrow_mut();
        assert!(slot.is_none(), "a model is already running on this thread");
        *slot = Some(state);
    });
}

pub(crate) fn uninstall() -> ModelState {
    MODEL.with(|m| m.borrow_mut().take().expect("no model installed"))
}

/// Whether shim operations should route through the model.
pub(crate) fn active() -> bool {
    MODEL.with(|m| m.borrow().as_ref().is_some_and(|st| !st.cleanup))
}

fn with<R>(f: impl FnOnce(&mut ModelState) -> R) -> R {
    MODEL.with(|m| f(m.borrow_mut().as_mut().expect("no model active")))
}

/// Suspends the current model thread, handing control to the host scheduler.
/// Called before every shimmed operation; a no-op outside a model run or
/// during cleanup.
pub(crate) fn schedule_point() {
    let sus = MODEL.with(|m| match m.borrow().as_ref() {
        Some(st) if !st.cleanup => st.threads[st.current].suspender,
        _ => 0,
    });
    if sus != 0 {
        // SAFETY: the pointer was registered by the current fiber at entry
        // and stays valid until the fiber completes; only the running fiber
        // (us) dereferences it, and the host never touches it concurrently
        // because host and fibers share one OS thread.
        unsafe { (*(sus as *mut ModelSuspender)).suspend(()) }
    }
}

fn count_op(st: &mut ModelState) {
    st.ops += 1;
    assert!(
        st.ops <= st.opts.max_ops,
        "model execution exceeded {} operations — livelock, or raise \
         Builder::max_ops",
        st.opts.max_ops
    );
}

fn push_log(st: &mut ModelState, rec: OpRecord) {
    st.log.push(rec);
}

/// Resolves a shim object's location id, registering the location (seeded
/// with the object's current real value) on first use in this execution.
pub(crate) fn resolve_loc(cell: &std::sync::atomic::AtomicU64, current_real: u64) -> usize {
    with(|st| {
        let raw = cell.load(Ordering::Relaxed);
        let (gen, id) = ((raw >> 32) as u32, (raw & 0xffff_ffff) as u32);
        if gen == st.gen && id != 0 {
            return (id - 1) as usize;
        }
        let id = st.locations.len();
        st.locations.push(Location {
            stores: vec![Store {
                val: current_real,
                writer: usize::MAX,
                time: 0,
                msg: None,
            }],
        });
        cell.store(((st.gen as u64) << 32) | (id as u64 + 1), Ordering::Relaxed);
        id
    })
}

fn is_acquire(ord: Ordering) -> bool {
    matches!(ord, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
}

fn is_release(ord: Ordering) -> bool {
    matches!(ord, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
}

/// An atomic load of `loc`; the returned value is chosen by the trail among
/// all stores the memory model permits.
pub(crate) fn load(loc: usize, ord: Ordering) -> u64 {
    with(|st| {
        count_op(st);
        let t = st.current;
        if ord == Ordering::SeqCst {
            let sc = st.sc_view.clone();
            st.threads[t].view.join(&sc);
        }
        let stores = &st.locations[loc].stores;
        let n = stores.len();
        let view = &st.threads[t].view;
        let mut min = view.floor(loc).min(n - 1);
        for (i, s) in stores.iter().enumerate().rev() {
            if view.knows(s.writer, s.time) {
                min = min.max(i);
                break;
            }
        }
        let k = (n - min) as u32;
        let pick = n - 1 - st.trail.choose(k) as usize;
        let (val, msg) = {
            let s = &st.locations[loc].stores[pick];
            (s.val, s.msg.clone())
        };
        let th = &mut st.threads[t];
        th.view.raise_floor(loc, pick);
        if is_acquire(ord) {
            if let Some(m) = msg {
                th.view.join(&m);
            }
        }
        push_log(
            st,
            OpRecord {
                thread: t,
                kind: OpKind::Load,
                loc,
                a: val,
                b: pick as u64,
                ord,
            },
        );
        val
    })
}

/// An atomic store to `loc`.
pub(crate) fn store(loc: usize, val: u64, ord: Ordering) {
    with(|st| {
        count_op(st);
        let t = st.current;
        if ord == Ordering::SeqCst {
            let sc = st.sc_view.clone();
            st.threads[t].view.join(&sc);
        }
        let idx = st.locations[loc].stores.len();
        let th = &mut st.threads[t];
        th.time += 1;
        let time = th.time;
        th.view.clock.set(t, time);
        th.view.raise_floor(loc, idx);
        let msg = is_release(ord).then(|| Box::new(th.view.clone()));
        if ord == Ordering::SeqCst {
            let v = th.view.clone();
            st.sc_view.join(&v);
        }
        st.locations[loc].stores.push(Store {
            val,
            writer: t,
            time,
            msg,
        });
        push_log(
            st,
            OpRecord {
                thread: t,
                kind: OpKind::Store,
                loc,
                a: val,
                b: 0,
                ord,
            },
        );
    })
}

/// An atomic read-modify-write on `loc`.  `f` sees the *newest* store
/// (atomicity) and returns `Some(new)` to commit or `None` to fail (CAS
/// mismatch).  Returns the observed value like the std `compare_exchange`
/// family.
pub(crate) fn rmw(
    loc: usize,
    f: impl FnOnce(u64) -> Option<u64>,
    success: Ordering,
    failure: Ordering,
) -> Result<u64, u64> {
    with(|st| {
        count_op(st);
        let t = st.current;
        if success == Ordering::SeqCst || failure == Ordering::SeqCst {
            let sc = st.sc_view.clone();
            st.threads[t].view.join(&sc);
        }
        let n = st.locations[loc].stores.len();
        let (cur, prev_msg) = {
            let s = &st.locations[loc].stores[n - 1];
            (s.val, s.msg.clone())
        };
        match f(cur) {
            None => {
                let th = &mut st.threads[t];
                th.view.raise_floor(loc, n - 1);
                if is_acquire(failure) {
                    if let Some(m) = prev_msg {
                        th.view.join(&m);
                    }
                }
                push_log(
                    st,
                    OpRecord {
                        thread: t,
                        kind: OpKind::RmwFail,
                        loc,
                        a: cur,
                        b: 0,
                        ord: failure,
                    },
                );
                Err(cur)
            }
            Some(new) => {
                let th = &mut st.threads[t];
                if is_acquire(success) {
                    if let Some(m) = &prev_msg {
                        th.view.join(m);
                    }
                }
                th.time += 1;
                let time = th.time;
                th.view.clock.set(t, time);
                th.view.raise_floor(loc, n);
                // An RMW continues the release sequence of the store it
                // replaces: acquiring readers of the new store synchronize
                // with the head of the sequence even if this RMW is relaxed.
                let msg = if is_release(success) {
                    Some(match prev_msg {
                        Some(mut m) => {
                            m.join(&th.view);
                            m
                        }
                        None => Box::new(th.view.clone()),
                    })
                } else {
                    prev_msg
                };
                if success == Ordering::SeqCst {
                    let v = th.view.clone();
                    st.sc_view.join(&v);
                }
                st.locations[loc].stores.push(Store {
                    val: new,
                    writer: t,
                    time,
                    msg,
                });
                push_log(
                    st,
                    OpRecord {
                        thread: t,
                        kind: OpKind::RmwOk,
                        loc,
                        a: cur,
                        b: new,
                        ord: success,
                    },
                );
                Ok(cur)
            }
        }
    })
}

/// An atomic fence.  Only `SeqCst` fences are modeled (the substrate uses no
/// weaker ones); anything else aborts the execution loudly rather than being
/// silently mis-modeled.
pub(crate) fn fence(ord: Ordering) {
    with(|st| {
        count_op(st);
        let t = st.current;
        assert!(
            ord == Ordering::SeqCst,
            "sting-check models only SeqCst fences (got {ord:?})"
        );
        let sc = st.sc_view.clone();
        st.threads[t].view.join(&sc);
        let v = st.threads[t].view.clone();
        st.sc_view.join(&v);
        push_log(
            st,
            OpRecord {
                thread: t,
                kind: OpKind::Fence,
                loc: usize::MAX,
                a: 0,
                b: 0,
                ord,
            },
        );
    })
}

/// Creates a model thread running `body`, inheriting the spawner's view
/// (spawn is a happens-before edge).  Thread 0 is the scenario root.
pub(crate) fn spawn_thread(body: Box<dyn FnOnce() + Send>) -> usize {
    let (id, stack_size) = with(|st| {
        let id = st.threads.len();
        let view = if st.threads.is_empty() {
            View::default()
        } else {
            st.threads[st.current].view.clone()
        };
        st.threads.push(ModelThread {
            fiber: None,
            suspender: 0,
            status: Status::Runnable,
            view,
            time: 0,
            result: None,
        });
        let t = st.current;
        push_log(
            st,
            OpRecord {
                thread: t,
                kind: OpKind::Spawn,
                loc: usize::MAX,
                a: id as u64,
                b: 0,
                ord: Ordering::Relaxed,
            },
        );
        (id, st.opts.stack_size)
    });
    let fiber = Fiber::new(
        Stack::new(stack_size),
        move |sus: &mut ModelSuspender, ()| {
            let ptr = sus as *mut ModelSuspender as usize;
            with(|st| st.threads[id].suspender = ptr);
            body();
        },
    );
    with(|st| st.threads[id].fiber = Some(fiber));
    id
}

/// Records the finished thread's return value for `join`.
pub(crate) fn store_result(id: usize, result: Box<dyn Any + Send>) {
    with(|st| st.threads[id].result = Some(result));
}

/// Id of the running model thread.
pub(crate) fn current_id() -> usize {
    with(|st| st.current)
}

/// Join attempt: on `Some`, the target finished and its final view has been
/// joined into the caller (join is a happens-before edge).  On `None`, the
/// caller has been marked blocked and must suspend.
pub(crate) fn try_join(target: usize) -> Option<Box<dyn Any + Send>> {
    with(|st| {
        if st.threads[target].status == Status::Finished {
            let tv = st.threads[target].view.clone();
            let cur = st.current;
            st.threads[cur].view.join(&tv);
            Some(
                st.threads[target]
                    .result
                    .take()
                    .expect("model thread result already taken"),
            )
        } else {
            let cur = st.current;
            st.threads[cur].status = Status::Blocked(target);
            None
        }
    })
}

/// What the host scheduler should do next.
pub(crate) enum HostAction {
    /// Resume this thread (its fiber is handed out; return it via
    /// [`host_yielded`] or report completion via [`host_finished`]).
    Run(usize, ModelFiber),
    /// All threads finished.
    Done,
    /// Runnable set is empty but threads remain: deadlock.
    Deadlock(String),
}

/// Picks the next thread to run, consuming one trail choice.  Candidate 0 is
/// always "continue the current thread" when possible, so the greedy first
/// execution is a plain sequential run and alternatives count as
/// preemptions against the optional bound.
pub(crate) fn host_pick() -> HostAction {
    with(|st| {
        let runnable: Vec<usize> = st
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| t.status == Status::Runnable)
            .map(|(i, _)| i)
            .collect();
        if runnable.is_empty() {
            if st.threads.iter().all(|t| t.status == Status::Finished) {
                return HostAction::Done;
            }
            let blocked: Vec<String> = st
                .threads
                .iter()
                .enumerate()
                .filter_map(|(i, t)| match t.status {
                    Status::Blocked(on) => Some(format!("thread {i} waits on thread {on}")),
                    _ => None,
                })
                .collect();
            return HostAction::Deadlock(format!(
                "model deadlock: no runnable threads ({})",
                blocked.join(", ")
            ));
        }
        let cur = st.current;
        let cur_runnable = runnable.contains(&cur);
        let budget_left = st.opts.preemption_bound.is_none_or(|b| st.preemptions < b);
        let pick = if cur_runnable && !budget_left {
            cur
        } else {
            let cands: Vec<usize> = if cur_runnable {
                std::iter::once(cur)
                    .chain(runnable.iter().copied().filter(|&i| i != cur))
                    .collect()
            } else {
                runnable
            };
            cands[st.trail.choose(cands.len() as u32) as usize]
        };
        if cur_runnable && pick != cur {
            st.preemptions += 1;
        }
        st.current = pick;
        push_log(
            st,
            OpRecord {
                thread: pick,
                kind: OpKind::Pick,
                loc: usize::MAX,
                a: pick as u64,
                b: 0,
                ord: Ordering::Relaxed,
            },
        );
        let fiber = st.threads[pick]
            .fiber
            .take()
            .expect("runnable model thread has no fiber");
        HostAction::Run(pick, fiber)
    })
}

/// Returns a yielded thread's fiber to its slot.
pub(crate) fn host_yielded(id: usize, fiber: ModelFiber) {
    with(|st| st.threads[id].fiber = Some(fiber));
}

/// Marks a thread finished and wakes any joiners.
pub(crate) fn host_finished(id: usize) {
    with(|st| {
        st.threads[id].status = Status::Finished;
        for th in st.threads.iter_mut() {
            if th.status == Status::Blocked(id) {
                th.status = Status::Runnable;
            }
        }
        push_log(
            st,
            OpRecord {
                thread: id,
                kind: OpKind::Finish,
                loc: usize::MAX,
                a: 0,
                b: 0,
                ord: Ordering::Relaxed,
            },
        );
    })
}

/// Enters cleanup mode (shim ops bypass the model from here on) and hands
/// back every remaining fiber so the caller can drop them — force-unwinding
/// suspended scenario threads — outside the state borrow.
pub(crate) fn begin_cleanup() -> Vec<ModelFiber> {
    with(|st| {
        st.cleanup = true;
        st.threads
            .iter_mut()
            .filter_map(|t| t.fiber.take())
            .collect()
    })
}
