//! Model threads: a `std::thread`-shaped spawn/join API whose threads are
//! fibers scheduled by the explorer.
//!
//! Only usable inside a [`model`](crate::model) run.  `spawn` is a
//! happens-before edge from spawner to child; `join` is one from child exit
//! to joiner — both are realized as vector-clock joins, exactly like the
//! real thread API's synchronization guarantees.

use crate::exec;
use std::marker::PhantomData;

/// Owned permission to join a model thread (like
/// [`std::thread::JoinHandle`]).
pub struct JoinHandle<T> {
    id: usize,
    _result: PhantomData<T>,
}

/// Spawns a model thread running `f`.
///
/// # Panics
///
/// Panics if called outside a model run.
pub fn spawn<T, F>(f: F) -> JoinHandle<T>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    assert!(
        exec::active(),
        "sting_check::thread::spawn outside a model run"
    );
    let id = exec::spawn_thread(Box::new(move || {
        let out = f();
        let id = exec::current_id();
        exec::store_result(id, Box::new(out));
    }));
    JoinHandle {
        id,
        _result: PhantomData,
    }
}

impl<T: 'static> JoinHandle<T> {
    /// Blocks the calling model thread until the target completes, then
    /// returns its result.
    ///
    /// Unlike `std`, a panicking child aborts the whole execution (the
    /// explorer reports it as the failure), so `join` does not return
    /// a `Result`.
    pub fn join(self) -> T {
        loop {
            if let Some(result) = exec::try_join(self.id) {
                return *result
                    .downcast::<T>()
                    .expect("model thread result has the spawned type");
            }
            // Marked blocked by try_join; the host will not run us again
            // until the target finishes.
            exec::schedule_point();
        }
    }
}
