//! Litmus tests for the model checker itself: classic weak-memory shapes
//! that must (or must not) be observable, plus mutation tests proving the
//! checker catches protocols whose required orderings were weakened.

use std::sync::Arc;
use sting_check::atomic::{fence, AtomicUsize, Ordering};
use sting_check::{
    model, model_bounded, model_bounded_expect_failure, model_expect_failure, thread,
};

/// Store buffering with SeqCst: `r0 == 0 && r1 == 0` must be impossible.
#[test]
fn store_buffer_seqcst_forbids_both_zero() {
    let explored = model(|| {
        let x = Arc::new(AtomicUsize::new(0));
        let y = Arc::new(AtomicUsize::new(0));
        let (x2, y2) = (x.clone(), y.clone());
        let t = thread::spawn(move || {
            x2.store(1, Ordering::SeqCst);
            y2.load(Ordering::SeqCst)
        });
        y.store(1, Ordering::SeqCst);
        let r0 = x.load(Ordering::SeqCst);
        let r1 = t.join();
        assert!(
            r0 == 1 || r1 == 1,
            "SC store buffering produced r0 == r1 == 0"
        );
    });
    // Sanity: the explorer actually branched.
    assert!(explored.executions > 1);
}

/// The same shape with Relaxed everywhere: the checker must find the
/// both-zero outcome (this is the checker-has-teeth baseline).
#[test]
fn store_buffer_relaxed_observes_both_zero() {
    let report = model_expect_failure(|| {
        let x = Arc::new(AtomicUsize::new(0));
        let y = Arc::new(AtomicUsize::new(0));
        let (x2, y2) = (x.clone(), y.clone());
        let t = thread::spawn(move || {
            x2.store(1, Ordering::Relaxed);
            y2.load(Ordering::Relaxed)
        });
        y.store(1, Ordering::Relaxed);
        let r0 = x.load(Ordering::Relaxed);
        let r1 = t.join();
        assert!(r0 == 1 || r1 == 1, "observed r0 == r1 == 0");
    });
    assert!(report.contains("observed r0 == r1 == 0"));
}

/// Store buffering with relaxed accesses but SeqCst fences between store
/// and load: both-zero is again impossible (validates fence modeling — this
/// is exactly the `Deque::pop`/`steal` fence pattern).
#[test]
fn store_buffer_seqcst_fences_forbid_both_zero() {
    model(|| {
        let x = Arc::new(AtomicUsize::new(0));
        let y = Arc::new(AtomicUsize::new(0));
        let (x2, y2) = (x.clone(), y.clone());
        let t = thread::spawn(move || {
            x2.store(1, Ordering::Relaxed);
            fence(Ordering::SeqCst);
            y2.load(Ordering::Relaxed)
        });
        y.store(1, Ordering::Relaxed);
        fence(Ordering::SeqCst);
        let r0 = x.load(Ordering::Relaxed);
        let r1 = t.join();
        assert!(
            r0 == 1 || r1 == 1,
            "fenced store buffering produced r0 == r1 == 0"
        );
    });
}

/// Message passing, the release/acquire contract: the payload written
/// before a Release flag store must be visible after an Acquire flag load.
#[test]
fn message_passing_release_acquire() {
    model(|| {
        let data = Arc::new(AtomicUsize::new(0));
        let flag = Arc::new(AtomicUsize::new(0));
        let (data2, flag2) = (data.clone(), flag.clone());
        let t = thread::spawn(move || {
            data2.store(42, Ordering::Relaxed);
            flag2.store(1, Ordering::Release);
        });
        if flag.load(Ordering::Acquire) == 1 {
            assert_eq!(data.load(Ordering::Relaxed), 42, "stale payload");
        }
        t.join();
    });
}

/// Message passing with a Relaxed flag: the reader may see the flag but a
/// stale payload.  The checker must find it.
#[test]
fn message_passing_relaxed_flag_fails() {
    let report = model_expect_failure(|| {
        let data = Arc::new(AtomicUsize::new(0));
        let flag = Arc::new(AtomicUsize::new(0));
        let (data2, flag2) = (data.clone(), flag.clone());
        let t = thread::spawn(move || {
            data2.store(42, Ordering::Relaxed);
            flag2.store(1, Ordering::Relaxed);
        });
        if flag.load(Ordering::Acquire) == 1 {
            assert_eq!(data.load(Ordering::Relaxed), 42, "stale payload");
        }
        t.join();
    });
    assert!(report.contains("stale payload"));
}

/// Coherence: a single location is still sequentially consistent per
/// location — after reading 2 a thread may never read 1 again, even fully
/// relaxed.
#[test]
fn per_location_coherence_holds() {
    model(|| {
        let x = Arc::new(AtomicUsize::new(0));
        let x2 = x.clone();
        let t = thread::spawn(move || {
            x2.store(1, Ordering::Relaxed);
            x2.store(2, Ordering::Relaxed);
        });
        let a = x.load(Ordering::Relaxed);
        let b = x.load(Ordering::Relaxed);
        assert!(b >= a, "read-read coherence violated: {a} then {b}");
        t.join();
    });
}

/// Read-read coherence must also hold across a release/acquire edge
/// (CoRR over happens-before): if the writer-side thread read the newer
/// value before releasing, the acquirer may not read the older one.
#[test]
fn coherence_transfers_across_acquire() {
    model(|| {
        let x = Arc::new(AtomicUsize::new(0));
        let flag = Arc::new(AtomicUsize::new(0));
        let (x2, flag2) = (x.clone(), flag.clone());
        let t = thread::spawn(move || {
            x2.store(7, Ordering::Relaxed);
            flag2.store(1, Ordering::Release);
        });
        if flag.load(Ordering::Acquire) == 1 {
            // x = 7 happens-before the release, so it is forced here...
            assert_eq!(x.load(Ordering::Relaxed), 7);
            // ...and stays forced for later reads.
            assert_eq!(x.load(Ordering::Relaxed), 7);
        }
        t.join();
    });
}

/// Exactly-once CAS claiming: two threads race a compare-exchange; exactly
/// one must win regardless of schedule.
#[test]
fn cas_claim_is_exactly_once() {
    model(|| {
        let slot = Arc::new(AtomicUsize::new(0));
        let wins = Arc::new(AtomicUsize::new(0));
        let (slot2, wins2) = (slot.clone(), wins.clone());
        let t = thread::spawn(move || {
            if slot2
                .compare_exchange(0, 1, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                wins2.fetch_add(1, Ordering::Relaxed);
            }
        });
        if slot
            .compare_exchange(0, 2, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            wins.fetch_add(1, Ordering::Relaxed);
        }
        t.join();
        assert_eq!(wins.load(Ordering::Relaxed), 1, "CAS won twice or never");
    });
}

/// A mini seqlock with the *weakened* (Relaxed payload) protocol the trace
/// ring used before this PR: the checker must exhibit a torn read that the
/// seq-word re-check fails to reject.  This is the mutation test backing
/// the trace.rs Release/Acquire upgrade.
#[test]
fn seqlock_relaxed_payload_admits_torn_read() {
    let report = model_expect_failure(|| seqlock_scenario(Ordering::Relaxed, Ordering::Relaxed));
    assert!(report.contains("torn read"), "unexpected report:\n{report}");
}

/// The fixed protocol — payload stores Release, payload loads Acquire —
/// survives exhaustive exploration of the same scenario.
#[test]
fn seqlock_release_acquire_payload_is_sound() {
    model(|| seqlock_scenario(Ordering::Release, Ordering::Acquire));
}

/// The Chase–Lev owner/thief core with production orderings (pop's bottom
/// stores Release, SeqCst fences both sides) survives exhaustive
/// (preemption-bounded) exploration: every claim returns a published value
/// and nothing is claimed twice.
#[test]
fn mini_deque_production_orderings_sound() {
    model_bounded(3, || mini_deque_pop_steal(Ordering::Release, true));
}

/// Weakening pop's `bottom` store to Relaxed — sound under pre-C++20
/// release sequences (Lê et al., PPoPP 2013), unsound since P0982 — lets a
/// thief acquire the decremented `bottom` with no synchronization and claim
/// a slot whose write it never observed.  This is the mutation test backing
/// the Release upgrade in `sting_core::deque::Deque::pop`.
#[test]
fn mini_deque_relaxed_bottom_store_claims_unpublished() {
    let report = model_bounded_expect_failure(3, || mini_deque_pop_steal(Ordering::Relaxed, true));
    assert!(
        report.contains("unpublished"),
        "unexpected report:\n{report}"
    );
}

/// Dropping the owner-side SeqCst fence in pop lets the owner read a stale
/// `top`, skip the last-item CAS, and claim an item a thief also claims.
#[test]
fn mini_deque_missing_pop_fence_is_unsound() {
    let report = model_bounded_expect_failure(3, || mini_deque_pop_steal(Ordering::Release, false));
    assert!(
        report.contains("claimed twice") || report.contains("unpublished"),
        "unexpected report:\n{report}"
    );
}

/// The Chase–Lev protocol in miniature: a two-slot ring, `top`/`bottom`
/// counters, an owner that pushes 41 and 42 then pops once, and a thief
/// that attempts two steals.  The thief is spawned before the pushes so all
/// ordering must come from the protocol, none from spawn happens-before.
/// Mirrors `sting_core::deque` with `pop_bottom_ord` on pop's bottom
/// decrement and `owner_fence` controlling pop's SeqCst fence.
fn mini_deque_pop_steal(pop_bottom_ord: Ordering, owner_fence: bool) {
    let top = Arc::new(AtomicUsize::new(0));
    let bottom = Arc::new(AtomicUsize::new(0));
    let slots = Arc::new([AtomicUsize::new(0), AtomicUsize::new(0)]);
    let (top2, bottom2, slots2) = (top.clone(), bottom.clone(), slots.clone());
    let thief = thread::spawn(move || {
        let mut claims = Vec::new();
        for _ in 0..2 {
            let t = top2.load(Ordering::Acquire);
            fence(Ordering::SeqCst);
            let b = bottom2.load(Ordering::Acquire);
            if t >= b {
                continue;
            }
            let v = slots2[t % 2].load(Ordering::Relaxed);
            if top2
                .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                .is_ok()
            {
                claims.push(v);
            }
        }
        claims
    });
    let mut claims = Vec::new();
    // push 41; push 42: publish the slot, then Release the new bottom.
    slots[0].store(41, Ordering::Relaxed);
    bottom.store(1, Ordering::Release);
    slots[1].store(42, Ordering::Relaxed);
    bottom.store(2, Ordering::Release);
    // pop: decrement bottom, fence, read top, claim (CAS iff last item).
    let b = bottom.load(Ordering::Relaxed) - 1;
    bottom.store(b, pop_bottom_ord);
    if owner_fence {
        fence(Ordering::SeqCst);
    }
    let t = top.load(Ordering::Relaxed);
    if t > b {
        bottom.store(b + 1, Ordering::Release);
    } else {
        let v = slots[b % 2].load(Ordering::Relaxed);
        let won = t != b
            || top
                .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                .is_ok();
        if t == b {
            bottom.store(b + 1, Ordering::Release);
        }
        if won {
            claims.push(v);
        }
    }
    claims.extend(thief.join());
    for &v in &claims {
        assert!(v == 41 || v == 42, "claimed an unpublished slot ({v})");
    }
    let total = claims.len();
    claims.sort_unstable();
    claims.dedup();
    assert_eq!(claims.len(), total, "an item was claimed twice");
}

/// One writer re-publishing a two-word record guarded by a seq word
/// (0 = busy, n = generation), one snapshotting reader; the reader accepts
/// a record only if the seq word is the same non-zero generation before and
/// after reading the payload.  With `store_ord`/`load_ord` on the payload
/// words this is exactly the trace ring's slot protocol in miniature.
fn seqlock_scenario(store_ord: Ordering, load_ord: Ordering) {
    let seq = Arc::new(AtomicUsize::new(1));
    let lo = Arc::new(AtomicUsize::new(10));
    let hi = Arc::new(AtomicUsize::new(10));
    let (seq2, lo2, hi2) = (seq.clone(), lo.clone(), hi.clone());
    let writer = thread::spawn(move || {
        // Generation 2: publish the record (20, 20).
        seq2.store(0, Ordering::Release);
        lo2.store(20, store_ord);
        hi2.store(20, store_ord);
        seq2.store(2, Ordering::Release);
    });
    let s1 = seq.load(Ordering::Acquire);
    if s1 != 0 {
        let a = lo.load(load_ord);
        let b = hi.load(load_ord);
        let s2 = seq.load(Ordering::Acquire);
        if s1 == s2 {
            // Accepted as a consistent record: both words must belong to
            // the same generation.
            assert_eq!(a, b, "torn read accepted as valid (seq {s1})");
        }
    }
    writer.join();
}

// --- claim-token mutations (wait.rs ClaimState) -------------------------
//
// Mini-transliterations of the blocking protocol's claim token: one packed
// word holding `gen << 3 | phase` (ARMED = 1, CLAIMED = 2), consumed by a
// compare-exchange from ARMED to CLAIMED.  The production protocol is
// model-checked directly in `crates/core/tests/model_wait.rs`; these
// mutations prove those scenarios have teeth by weakening the claim and
// showing the checker catch the resulting double wake-up / lost payload.

const CLAIM_ARMED: usize = 1;
const CLAIM_CLAIMED: usize = 2;

fn claim_pack(gen: usize, phase: usize) -> usize {
    (gen << 3) | phase
}

/// The production shape: claim is a single AcqRel CAS, so two racing
/// wakers consume one armed episode exactly once.
#[test]
fn claim_token_cas_is_exactly_once() {
    let explored = model(|| {
        let state = Arc::new(AtomicUsize::new(claim_pack(1, CLAIM_ARMED)));
        let s2 = state.clone();
        let cas = |s: &AtomicUsize| {
            s.compare_exchange(
                claim_pack(1, CLAIM_ARMED),
                claim_pack(1, CLAIM_CLAIMED),
                Ordering::AcqRel,
                Ordering::Relaxed,
            )
            .is_ok()
        };
        let t = thread::spawn(move || cas(&s2));
        let mine = cas(&state);
        let theirs = t.join();
        assert!(mine ^ theirs, "claim CAS must succeed exactly once");
    });
    assert!(explored.executions > 1);
}

/// MUTATION: the claim weakened to a load-check-then-store.  Two wakers
/// can both observe ARMED before either stores CLAIMED, so both believe
/// they own the wake-up — the double-wake the CAS exists to prevent.
#[test]
fn claim_token_load_store_double_claims() {
    let report = model_bounded_expect_failure(4, || {
        let state = Arc::new(AtomicUsize::new(claim_pack(1, CLAIM_ARMED)));
        let s2 = state.clone();
        let broken_claim = |s: &AtomicUsize| {
            if s.load(Ordering::Acquire) == claim_pack(1, CLAIM_ARMED) {
                s.store(claim_pack(1, CLAIM_CLAIMED), Ordering::Release);
                true
            } else {
                false
            }
        };
        let t = thread::spawn(move || broken_claim(&s2));
        let mine = broken_claim(&state);
        let theirs = t.join();
        assert!(mine ^ theirs, "claim must succeed exactly once");
    });
    assert!(
        report.contains("exactly once"),
        "load+store claim must double-claim; got:\n{report}"
    );
}

/// MUTATION: the claim CAS's Release half dropped (Acquire success
/// ordering).  The condition written before the claim is no longer
/// published to the owner whose `finish` observes CLAIMED, so a wake-up
/// can arrive without its payload.
#[test]
fn claim_token_relaxed_claim_loses_payload() {
    let report = model_expect_failure(|| {
        let state = Arc::new(AtomicUsize::new(claim_pack(1, CLAIM_ARMED)));
        let data = Arc::new(AtomicUsize::new(0));
        let (s2, d2) = (state.clone(), data.clone());
        let t = thread::spawn(move || {
            d2.store(42, Ordering::Relaxed);
            let _ = s2.compare_exchange(
                claim_pack(1, CLAIM_ARMED),
                claim_pack(1, CLAIM_CLAIMED),
                Ordering::Acquire, // MUTATION: production uses AcqRel.
                Ordering::Relaxed,
            );
        });
        // The owner's finish: an Acquire read observing CLAIMED.
        if state.load(Ordering::Acquire) == claim_pack(1, CLAIM_CLAIMED) {
            assert_eq!(data.load(Ordering::Relaxed), 42, "payload lost");
        }
        t.join();
    });
    assert!(
        report.contains("payload lost"),
        "dropping the claim's Release half must lose the payload; got:\n{report}"
    );
}

/// The multi-level deque's occupancy-bit protocol
/// (`sting_core::deque::MultiDeque`), transliterated: `slot` stands for a
/// band's contents, bit 0 of `occ` for that band's occupancy bit.
/// Publishing is contents-store then `fetch_or(Release)`; clearing is
/// `fetch_and(AcqRel)`, re-check the contents, `fetch_or(Release)` back
/// if the re-check sees any.  RMWs on `occ` serialize, so a clear racing
/// a publish always lands before or after it in `occ`'s modification
/// order — and the publish's **Release** (acquired by the clear's RMW) is
/// what makes the racing push's contents visible to the re-check.
/// Invariant: once both sides quiesce, contents present ⇒ bit set, else
/// `pop`'s bitmask scan would never look at the band again.
fn banded_bitmask_scenario(publish_ord: Ordering) {
    let slot = Arc::new(AtomicUsize::new(0));
    let occ = Arc::new(AtomicUsize::new(0));
    let (slot2, occ2) = (slot.clone(), occ.clone());
    let owner = thread::spawn(move || {
        slot2.store(42, Ordering::Relaxed);
        occ2.fetch_or(1, publish_ord);
    });
    let (slot3, occ3) = (slot.clone(), occ.clone());
    let clearer = thread::spawn(move || {
        // clear_if_empty: clear the bit, then re-check the band.
        occ3.fetch_and(!1, Ordering::AcqRel);
        if slot3.load(Ordering::Relaxed) != 0 {
            occ3.fetch_or(1, Ordering::Release);
        }
    });
    owner.join();
    clearer.join();
    if slot.load(Ordering::Relaxed) != 0 {
        assert!(
            occ.load(Ordering::Relaxed) & 1 != 0,
            "occupancy bit stranded the item"
        );
    }
}

/// The production orderings: a Release publish is always seen by the
/// clearer's re-check, so no interleaving strands an item behind a
/// cleared bit.
#[test]
fn banded_bitmask_release_publish_never_strands() {
    let explored = model(|| banded_bitmask_scenario(Ordering::Release));
    assert!(explored.executions > 1);
}

/// MUTATION: the publish `fetch_or` weakened to Relaxed.  The clearer's
/// RMW still serializes after the publish in `occ`'s modification order,
/// but acquires nothing — its re-check can read the band as empty, skip
/// the re-set, and strand the item behind a cleared bit.
#[test]
fn banded_bitmask_relaxed_publish_strands_item() {
    let report = model_expect_failure(|| banded_bitmask_scenario(Ordering::Relaxed));
    assert!(
        report.contains("occupancy bit stranded the item"),
        "dropping the publish Release must strand an item; got:\n{report}"
    );
}
