//! Static/dynamic cross-check: the same lock-order inversion is caught
//! both by the static analyzer (before running) and by the trace audit
//! (after running).
//!
//! The program acquires two mutexes in opposite orders on two threads —
//! the classic AB/BA deadlock shape — but serializes the critical
//! sections with a semaphore so the run always completes.  The static
//! analyzer flags the *potential* (`lock-order-cycle`); the flight
//! recorder replay flags the *witnessed* inversion
//! (`LockOrderInversion`) from `lock-acquire`/`lock-release` events.

use sting::prelude::*;

/// AB on one thread, BA on another; a semaphore keeps the critical
/// sections disjoint so the inversion never actually deadlocks.
const AB_BA: &str = r#"
(define ma (make-mutex))
(define mb (make-mutex))
(define gate (make-semaphore 1))

(define (ab)
  (semaphore-acquire gate)
  (mutex-acquire ma)
  (mutex-acquire mb)
  (mutex-release mb)
  (mutex-release ma)
  (semaphore-release gate))

(define (ba)
  (semaphore-acquire gate)
  (mutex-acquire mb)
  (mutex-acquire ma)
  (mutex-release ma)
  (mutex-release mb)
  (semaphore-release gate))

(define t1 (fork-thread ab))
(define t2 (fork-thread ba))
(thread-value t1)
(thread-value t2)
"#;

#[test]
fn static_analyzer_flags_the_inversion() {
    let report = sting::analyze::analyze_source(AB_BA).unwrap();
    let cycle = report
        .diagnostics
        .iter()
        .find(|d| d.kind == sting::analyze::DiagnosticKind::LockOrderCycle)
        .expect("AB/BA program should produce a lock-order-cycle diagnostic");
    assert!(
        cycle.message.contains("acquired in a cycle"),
        "unexpected message: {}",
        cycle.message
    );
    // The acquire-order graph is exported for exactly this cross-check.
    assert!(
        report.lock_edges.len() >= 2,
        "expected both AB and BA edges, got {:?}",
        report.lock_edges
    );
}

#[test]
fn trace_audit_flags_the_inversion_at_runtime() {
    let vm = VmBuilder::new().vps(2).name("crosscheck").build();
    let interp = Interp::new(vm.clone());
    vm.tracer().set_enabled(true);
    interp.eval(AB_BA).unwrap();
    vm.tracer().set_enabled(false);

    let report = vm.trace_audit();
    let inversion = report
        .findings
        .iter()
        .find(|f| f.kind == sting::core::audit::FindingKind::LockOrderInversion)
        .unwrap_or_else(|| panic!("expected a LockOrderInversion finding, got: {report}"));
    assert!(
        inversion.detail.contains("inconsistent orders"),
        "unexpected detail: {}",
        inversion.detail
    );
    // No other invariant should trip on this clean, serialized run.
    for f in &report.findings {
        assert_eq!(
            f.kind,
            sting::core::audit::FindingKind::LockOrderInversion,
            "unexpected finding: {f}"
        );
    }
    vm.shutdown();
}

#[test]
fn consistent_order_is_clean_both_ways() {
    let program = r#"
(define ma (make-mutex))
(define mb (make-mutex))
(define (both)
  (mutex-acquire ma)
  (mutex-acquire mb)
  (mutex-release mb)
  (mutex-release ma))
(define t1 (fork-thread both))
(define t2 (fork-thread both))
(thread-value t1)
(thread-value t2)
"#;
    let report = sting::analyze::analyze_source(program).unwrap();
    assert!(report.is_clean(), "static analyzer flagged: {report}");

    let vm = VmBuilder::new().vps(2).name("crosscheck-clean").build();
    let interp = Interp::new(vm.clone());
    vm.tracer().set_enabled(true);
    interp.eval(program).unwrap();
    vm.tracer().set_enabled(false);
    let audit = vm.trace_audit();
    assert!(
        !audit
            .findings
            .iter()
            .any(|f| f.kind == sting::core::audit::FindingKind::LockOrderInversion),
        "audit flagged a consistent order: {audit}"
    );
    vm.shutdown();
}
