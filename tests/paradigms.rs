//! The paper's Section 4 paradigms, end to end, with the substrate
//! behaviours they depend on asserted through counters: result
//! parallelism (stealing), master/slave (blocking + preemption),
//! speculative and barrier synchronization.

use std::sync::Arc;
use sting::core::policies;
use sting::prelude::*;

/// Figure 3's prime finder, used by several tests.
fn primes_futures(vm: &Arc<Vm>, limit: i64) -> Vec<i64> {
    let r = vm.run(move |cx| {
        let mut primes = Future::spawn(cx, |_| Value::list([Value::Int(2)]));
        let mut i = 3i64;
        while i <= limit {
            let prev = primes.clone();
            primes = Future::delay(&cx.vm(), move |cx| {
                let mut j = 3i64;
                while j * j <= i {
                    if i % j == 0 {
                        return prev.force(cx);
                    }
                    j += 2;
                }
                Value::cons(Value::Int(i), prev.force(cx))
            });
            i += 2;
        }
        primes.force(cx)
    });
    r.unwrap()
        .list_iter()
        .map(|v| v.as_int().unwrap())
        .collect()
}

#[test]
fn result_parallelism_is_correct_under_lifo_and_fifo() {
    let expect: Vec<i64> = vec![
        97, 89, 83, 79, 73, 71, 67, 61, 59, 53, 47, 43, 41, 37, 31, 29, 23, 19, 17, 13, 11, 7, 5,
        3, 2,
    ];
    for factory in [
        policies::local_lifo as fn() -> policies::LocalQueue,
        policies::local_fifo as fn() -> policies::LocalQueue,
    ] {
        let vm = VmBuilder::new()
            .vps(1)
            .policy(move |_| factory().boxed())
            .build();
        assert_eq!(primes_futures(&vm, 100), expect);
        vm.shutdown();
    }
}

#[test]
fn lifo_steals_more_than_fifo() {
    // §4.1.1: "a LIFO scheduling policy will cause processes computing
    // large primes to be run first. Stealing will occur much more
    // frequently here."
    let count_steals = |factory: fn() -> policies::LocalQueue| {
        let vm = VmBuilder::new()
            .vps(1)
            .policy(move |_| factory().boxed())
            .build();
        primes_futures(&vm, 400);
        let s = vm.counters().snapshot();
        vm.shutdown();
        (s.steals, s.tcbs_allocated, s.blocks)
    };
    let (lifo_steals, lifo_tcbs, _) = count_steals(policies::local_lifo);
    let (fifo_steals, fifo_tcbs, _) = count_steals(policies::local_fifo);
    assert!(
        lifo_steals > fifo_steals,
        "LIFO steals ({lifo_steals}) must exceed FIFO steals ({fifo_steals})"
    );
    assert!(
        lifo_tcbs <= fifo_tcbs,
        "stealing throttles TCB allocation: LIFO {lifo_tcbs} vs FIFO {fifo_tcbs}"
    );
}

#[test]
fn master_slave_with_bounded_workers() {
    let vm = VmBuilder::new().vps(2).build();
    let ts = TupleSpace::new();
    let workers: Vec<_> = (0..3)
        .map(|_| {
            let ts = ts.clone();
            vm.fork(move |cx| {
                let mut n = 0i64;
                loop {
                    let b = ts.get(&Template::new(vec![lit(Value::sym("w")), formal()]));
                    let x = b[0].as_int().unwrap();
                    if x < 0 {
                        return n;
                    }
                    ts.put(vec![Value::sym("r"), Value::Int(x), Value::Int(x + 1)]);
                    n += 1;
                    cx.checkpoint();
                }
            })
        })
        .collect();
    for x in 0..60i64 {
        ts.put(vec![Value::sym("w"), Value::Int(x)]);
    }
    let mut total = 0i64;
    for x in 0..60i64 {
        let b = ts.get(&Template::new(vec![lit(Value::sym("r")), lit(x), formal()]));
        total += b[0].as_int().unwrap();
    }
    assert_eq!(total, (1..=60i64).sum());
    for _ in 0..3 {
        ts.put(vec![Value::sym("w"), Value::Int(-1)]);
    }
    let processed: i64 = workers
        .into_iter()
        .map(|w| w.join_blocking().unwrap().as_int().unwrap())
        .sum();
    assert_eq!(processed, 60);
    vm.shutdown();
}

#[test]
fn speculative_or_parallelism_reclaims_losers() {
    let vm = VmBuilder::new().vps(1).build();
    let r = vm.run(|cx| {
        let before = cx.vm().counters().snapshot();
        let losers: Vec<_> = (0..3)
            .map(|_| {
                cx.fork(|cx| -> i64 {
                    loop {
                        cx.yield_now();
                    }
                })
            })
            .collect();
        let winner = cx.fork(|_| 7i64);
        let mut group = losers.clone();
        group.push(winner);
        let (idx, result) = race(&group);
        assert_eq!(idx, 3);
        // Losers all determine (reclaimed).
        for l in &losers {
            let r = cx.wait(l);
            assert_eq!(r, Ok(Value::sym("speculation-lost")));
        }
        let after = cx.vm().counters().snapshot().since(&before);
        assert_eq!(after.determinations, 4);
        result.unwrap().as_int().unwrap()
    });
    assert_eq!(r.unwrap().as_int(), Some(7));
    vm.shutdown();
}

#[test]
fn barrier_phases_with_preemption_disabled() {
    // §4.2.2: fine-grained barrier phases benefit from disabling
    // preemption; here we just assert without_preemption preserves
    // correctness under barrier load.
    let vm = VmBuilder::new()
        .vps(1)
        .tick(std::time::Duration::from_micros(200))
        .build();
    let barrier = Barrier::new(3);
    let ts: Vec<_> = (0..3)
        .map(|_| {
            let b = barrier.clone();
            vm.fork(move |cx| {
                let mut acc = 0i64;
                for _ in 0..20 {
                    cx.without_preemption(|| {
                        acc += 1;
                    });
                    b.arrive();
                }
                acc
            })
        })
        .collect();
    for t in ts {
        assert_eq!(t.join_blocking().unwrap().as_int(), Some(20));
    }
    assert_eq!(barrier.generation(), 20);
    vm.shutdown();
}

#[test]
fn dataflow_with_ivars() {
    // I-structure style dataflow (reference [3]): a diamond dependency.
    let vm = VmBuilder::new().vps(2).build();
    let a = IVar::new();
    let b = IVar::new();
    let c = IVar::new();
    let (a1, b1) = (a.clone(), b.clone());
    vm.fork(move |_| {
        b1.put(Value::Int(a1.get().as_int().unwrap() * 2)).unwrap();
        0i64
    });
    let (a2, c1) = (a.clone(), c.clone());
    vm.fork(move |_| {
        c1.put(Value::Int(a2.get().as_int().unwrap() + 5)).unwrap();
        0i64
    });
    let (b2, c2) = (b.clone(), c.clone());
    let sink = vm.fork(move |_| b2.get().as_int().unwrap() + c2.get().as_int().unwrap());
    a.put(Value::Int(10)).unwrap();
    assert_eq!(sink.join_blocking().unwrap().as_int(), Some(35));
    vm.shutdown();
}

#[test]
fn systolic_neighbours_on_a_ring() {
    // §3.2: self-relative VP addressing for systolic programs.  A token
    // circulates the ring once, each node adding its index; the driver
    // collects the final token from node 3's outbox (= node 0's inbox).
    let vm = VmBuilder::new()
        .vps(4)
        .policy(|_| policies::local_fifo().boxed())
        .build();
    let topo = Topology::ring(4);
    let ch: Vec<Channel> = (0..4).map(|_| Channel::unbounded()).collect();
    let nodes: Vec<_> = (0..4usize)
        .map(|k| {
            let inbox = ch[k].clone();
            let outbox = ch[topo.right(k).unwrap()].clone();
            vm.fork_on(k, move |_| {
                let v = inbox.recv().unwrap().as_int().unwrap();
                outbox.send(Value::Int(v + k as i64)).unwrap();
                v
            })
            .unwrap()
        })
        .collect();
    ch[0].send(Value::Int(0)).unwrap();
    let seen: Vec<i64> = nodes
        .iter()
        .map(|t| t.join_blocking().unwrap().as_int().unwrap())
        .collect();
    // Node k saw the partial sum 0+1+…+(k-1).
    assert_eq!(seen, vec![0, 0, 1, 3]);
    // The completed token comes back around to node 0's channel.
    let final_token = ch[0].recv().unwrap().as_int().unwrap();
    assert_eq!(final_token, 6); // 0 + 1 + 2 + 3
    vm.shutdown();
}
