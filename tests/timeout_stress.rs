//! Timeout-stress integration test: timed blocking operations racing
//! wake-ups, cancellations racing parks, on every synchronization layer
//! at once (see EXPERIMENTS.md, "Timeout stress").
//!
//! Runs with tracing on so the debug-build shutdown audit replays the
//! whole run against the blocking-protocol invariants: a wake-up
//! delivered to a cancelled or timed-out episode (`WakeAfterCancel`) or
//! an episode still registered at determination (`WaiterLeak`) panics the
//! shutdown.  The explicit `trace_audit` assertion keeps the check active
//! in release builds too.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;
use sting_core::{tc, VmBuilder};
use sting_sync::{Channel, Mutex, Semaphore};
use sting_tuple::{Template, TupleSpace};
use sting_value::Value;

const SHORT: Duration = Duration::from_millis(1);
const LONG: Duration = Duration::from_millis(200);

#[test]
fn timed_waits_race_wakes_and_cancels_cleanly() {
    let vm = VmBuilder::new()
        .vps(2)
        .processors(2)
        .trace(true)
        .trace_capacity(1 << 16)
        .build();

    let mutex = Mutex::new(0, 0);
    let sem = Semaphore::new(0);
    let chan = Channel::bounded(1);
    let space = TupleSpace::new();
    let timeouts = Arc::new(AtomicUsize::new(0));
    let successes = Arc::new(AtomicUsize::new(0));

    // Contending consumers: short timeouts lose races on purpose.
    let mut workers = Vec::new();
    for i in 0..8usize {
        let mutex = mutex.clone();
        let sem = sem.clone();
        let chan = chan.clone();
        let space = space.clone();
        let timeouts = timeouts.clone();
        let successes = successes.clone();
        workers.push(vm.fork(move |cx| {
            for round in 0..30usize {
                let fast = (i + round) % 2 == 0;
                let dur = if fast { SHORT } else { LONG };
                match round % 4 {
                    0 => match mutex.acquire_timeout(dur) {
                        Ok(guard) => {
                            successes.fetch_add(1, Ordering::Relaxed);
                            cx.yield_now();
                            drop(guard);
                        }
                        Err(_) => {
                            timeouts.fetch_add(1, Ordering::Relaxed);
                        }
                    },
                    1 => match sem.acquire_timeout(dur) {
                        Ok(()) => {
                            successes.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(_) => {
                            timeouts.fetch_add(1, Ordering::Relaxed);
                        }
                    },
                    2 => match chan.recv_timeout(dur) {
                        Ok(_) => {
                            successes.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(_) => {
                            timeouts.fetch_add(1, Ordering::Relaxed);
                        }
                    },
                    _ => match space.get_timeout(&Template::any(1), dur) {
                        Some(_) => {
                            successes.fetch_add(1, Ordering::Relaxed);
                        }
                        None => {
                            timeouts.fetch_add(1, Ordering::Relaxed);
                        }
                    },
                }
                cx.checkpoint();
            }
            0i64
        }));
    }

    // Producers: drip wake-ups so both outcomes stay populated.
    let producers: Vec<_> = (0..2)
        .map(|_| {
            let sem = sem.clone();
            let chan = chan.clone();
            let space = space.clone();
            vm.fork(move |cx| {
                for i in 0..40i64 {
                    sem.release();
                    let _ = chan.send_timeout(Value::Int(i), SHORT);
                    space.put(vec![Value::Int(i)]);
                    cx.sleep(Duration::from_millis(2));
                }
                0i64
            })
        })
        .collect();

    // Cancellation racing parks: threads blocked forever on the empty
    // structures, terminated mid-wait.
    let doomed: Vec<_> = (0..4)
        .map(|i| {
            let mutex = mutex.clone();
            let chan = Channel::unbounded();
            vm.fork(move |_cx| {
                if i % 2 == 0 {
                    let _guard = mutex.acquire();
                    std::thread::sleep(Duration::from_millis(50));
                } else {
                    let _ = chan.recv();
                }
                0i64
            })
        })
        .collect();
    std::thread::sleep(Duration::from_millis(20));
    for t in &doomed {
        let _ = tc::thread_terminate(t, Value::sym("stress-kill"));
    }

    for t in workers.into_iter().chain(producers) {
        t.join_blocking().unwrap();
    }
    for t in doomed {
        let _ = t.join_blocking();
    }

    assert!(
        successes.load(Ordering::Relaxed) > 0,
        "stress produced no successful timed waits"
    );

    let report = vm.trace_audit();
    assert!(
        report.is_clean(),
        "blocking-protocol audit found violations:\n{report}"
    );
    // Debug builds re-run the audit here and panic on WakeAfterCancel or
    // WaiterLeak findings.
    vm.shutdown();
}

#[test]
fn every_layer_times_out_against_an_empty_structure() {
    let vm = VmBuilder::new()
        .vps(1)
        .trace(true)
        .trace_capacity(1 << 14)
        .build();
    let t = vm.fork(|cx| {
        let m = Mutex::new(0, 0);
        let held = m.acquire();
        assert!(m.acquire_timeout(SHORT).is_err());
        drop(held);
        assert!(Semaphore::new(0).acquire_timeout(SHORT).is_err());
        assert!(Channel::unbounded().recv_timeout(SHORT).is_err());
        assert!(sting_sync::IVar::new().get_timeout(SHORT).is_err());
        assert!(sting_sync::Stream::new()
            .cursor()
            .hd_timeout(SHORT)
            .is_err());
        assert!(sting_sync::Barrier::new(2).arrive_timeout(SHORT).is_err());
        assert!(TupleSpace::new()
            .get_timeout(&Template::any(1), SHORT)
            .is_none());
        let slow = cx.fork(|cx| {
            cx.sleep(LONG);
            1i64
        });
        assert!(
            cx.wait_timeout(&slow, SHORT).is_none(),
            "join must time out"
        );
        assert_eq!(cx.wait(&slow), Ok(Value::Int(1)));
        0i64
    });
    t.join_blocking().unwrap();
    let report = vm.trace_audit();
    assert!(report.is_clean(), "audit found violations:\n{report}");
    vm.shutdown();
}
