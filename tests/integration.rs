//! Cross-crate integration: the whole stack (substrate + sync + tuple +
//! scheme) cooperating in single scenarios.

use std::sync::Arc;
use std::time::Duration;
use sting::core::policies::{self, GlobalQueue, QueueOrder};
use sting::prelude::*;

#[test]
fn rust_and_scheme_threads_share_one_machine() {
    let vm = VmBuilder::new().vps(2).build();
    let interp = Interp::new(vm.clone());
    let ts = TupleSpace::new();

    // A native Rust worker answering jobs...
    let ts2 = ts.clone();
    let worker = vm.fork(move |cx| loop {
        let b = ts2.get(&Template::new(vec![lit(Value::sym("square")), formal()]));
        let n = b[0].as_int().unwrap();
        if n < 0 {
            return 0i64;
        }
        ts2.put(vec![Value::sym("answer"), Value::Int(n), Value::Int(n * n)]);
        cx.checkpoint();
    });

    // ...serving a Scheme client through the same first-class tuple space.
    interp
        .globals()
        .set(Symbol::intern("the-ts"), ts.to_value());
    let v = interp
        .eval(
            r#"
(let loop ((n 0) (total 0))
  (if (= n 10)
      total
      (begin
        (ts-put the-ts (list 'square n))
        (let ((ans (ts-get the-ts (list 'answer n '?))))
          (loop (+ n 1) (+ total (car ans)))))))
"#,
        )
        .unwrap();
    assert_eq!(v.as_int(), Some((0..10i64).map(|n| n * n).sum()));

    ts.put(vec![Value::sym("square"), Value::Int(-1)]);
    worker.join_blocking().unwrap();
    vm.shutdown();
}

#[test]
fn two_languages_two_vms_one_physical_machine() {
    let machine = PhysicalMachine::new(2);
    let vm_a = VmBuilder::new().vps(1).machine(machine.clone()).build();
    let vm_b = VmBuilder::new().vps(1).machine(machine.clone()).build();
    let ia = Interp::new(vm_a.clone());
    let t = vm_b.fork(|_cx| 20i64);
    let a = ia.eval("(* 11 2)").unwrap().as_int().unwrap();
    let b = t.join_blocking().unwrap().as_int().unwrap();
    assert_eq!(a + b, 42);
    vm_a.shutdown();
    vm_b.shutdown();
}

#[test]
fn futures_streams_and_tuples_compose() {
    let vm = VmBuilder::new().vps(2).build();
    let r = vm.run(|cx| {
        let stream = Stream::new();
        let ts = TupleSpace::with_kind(SpaceKind::Queue);
        // Producer future feeds the stream.
        let s2 = stream.clone();
        let producer = Future::spawn(cx, move |_| {
            for i in 1..=20i64 {
                s2.attach(Value::Int(i));
            }
            s2.close();
            0i64
        });
        // A pipeline stage moves stream items into the tuple space.
        let (s3, ts2) = (stream.clone(), ts.clone());
        let stage = cx.fork(move |_| {
            let mut c = s3.cursor();
            while let Some(v) = c.next() {
                ts2.put(vec![v]);
            }
            0i64
        });
        // Consumer drains the queue-specialized space.
        let mut sum = 0i64;
        for _ in 0..20 {
            let b = ts.get(&Template::any(1));
            sum += b[0].as_int().unwrap();
        }
        producer.touch().unwrap();
        cx.wait(&stage).unwrap();
        sum
    });
    assert_eq!(r.unwrap().as_int(), Some(210));
    vm.shutdown();
}

#[test]
fn policy_choice_is_per_vp_and_observable() {
    let q = GlobalQueue::shared(QueueOrder::Fifo);
    let vm = VmBuilder::new()
        .vps(3)
        .policy(move |i| match i {
            0 => q.policy(),
            1 => policies::local_lifo().boxed(),
            _ => policies::priority_high().boxed(),
        })
        .build();
    assert_eq!(vm.vp(0).unwrap().policy_name(), "global-fifo");
    assert_eq!(vm.vp(1).unwrap().policy_name(), "local-lifo");
    assert_eq!(vm.vp(2).unwrap().policy_name(), "priority-high");
    // Work runs fine on each.
    for vp in 0..3 {
        let t = vm.fork_on(vp, move |_| vp as i64).unwrap();
        assert_eq!(t.join_blocking().unwrap().as_int(), Some(vp as i64));
    }
    vm.shutdown();
}

#[test]
fn speculative_scheme_against_native() {
    // A Scheme thread and a native thread race through the same group
    // mechanism.
    let vm = VmBuilder::new().vps(2).build();
    let interp = Interp::new(vm.clone());
    let native: Arc<sting::core::Thread> = vm.fork(|cx| {
        cx.sleep(Duration::from_millis(400));
        Value::sym("native")
    });
    interp
        .globals()
        .set(Symbol::intern("rival"), native.to_value());
    let v = interp
        .eval("(cadr (wait-for-one! (list rival (fork-thread (lambda () 'scheme)))))")
        .unwrap();
    assert_eq!(v, Value::sym("scheme"));
    vm.shutdown();
}

#[test]
fn genealogy_spans_languages() {
    let vm = VmBuilder::new().vps(1).build();
    let interp = Interp::new(vm.clone());
    // A Scheme toplevel thread forks children; the genealogy tree records
    // them.
    let v = interp
        .eval(
            r#"
(let ((kids (map (lambda (k) (fork-thread (lambda () k))) '(1 2 3))))
  (apply + (wait-for-all kids)))
"#,
        )
        .unwrap();
    assert_eq!(v.as_int(), Some(6));
    // Root group saw all the threads.
    assert!(vm.counters().snapshot().threads_created >= 4);
    vm.shutdown();
}

#[test]
fn barriers_coordinate_native_workers() {
    let vm = VmBuilder::new().vps(2).processors(2).build();
    let barrier = Barrier::new(4);
    let ivar = IVar::new();
    let ts: Vec<_> = (0..4)
        .map(|k| {
            let b = barrier.clone();
            let iv = ivar.clone();
            vm.fork(move |_cx| {
                // Phase 1: everyone computes.
                let part = k * 10;
                if b.arrive() {
                    // One leader publishes after the barrier.
                    iv.put(Value::sym("phase2")).unwrap();
                }
                // Phase 2 gate.
                iv.get();
                part as i64
            })
        })
        .collect();
    let total: i64 = ts
        .iter()
        .map(|t| t.join_blocking().unwrap().as_int().unwrap())
        .sum();
    assert_eq!(total, 60);
    vm.shutdown();
}

#[test]
fn channels_bridge_os_and_green_threads() {
    let vm = VmBuilder::new().vps(1).build();
    let ch = Channel::bounded(4);
    let ch2 = ch.clone();
    let echo = vm.fork(move |_cx| {
        let mut n = 0i64;
        while let Some(v) = ch2.recv() {
            n += v.as_int().unwrap();
        }
        n
    });
    // Send from the plain OS thread (main).
    for i in 1..=10i64 {
        ch.send(Value::Int(i)).unwrap();
    }
    ch.close();
    assert_eq!(echo.join_blocking().unwrap().as_int(), Some(55));
    vm.shutdown();
}
